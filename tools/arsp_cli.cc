// Copyright 2026 The ARSP Authors.
//
// arsp_cli — run ARSP queries on CSV datasets, locally or against an arspd.
//
// Usage:
//   arsp_cli --algo list                              (enumerate solvers)
//   arsp_cli --input data.csv [--header]
//            --constraints wr:0.5,2.0[,l2,h2,...]   (weight ratios), or
//            --constraints rank:c                   (weak ranking ω1≥...≥ωc+1)
//            [--batch specs.txt]    (one constraint spec per line, solved
//                                    concurrently through the engine)
//            [--repeat N]           (re-issue the request list N times; the
//                                    engine's result cache serves repeats)
//            [--subset m%[,m%...]]  (run the query per object-prefix view —
//                                    the paper's Fig. 6 m% sweep — and print
//                                    a per-subset stats table; views derive
//                                    their contexts from the base dataset's,
//                                    so the sweep pays one full index build)
//            [--algo NAME|auto] [--opt key=value ...] [--stats]
//            [--threads N]          (intra-query workers per solve: 0 =
//                                    engine policy, 1 = serial, N >= 2
//                                    requests N; answers are bit-identical
//                                    to serial either way)
//            [--topk K] [--threshold P]   (derived-goal queries; pushed down
//                                    into kCapGoalPushdown solvers)
//            [--instances out_instances.csv] [--objects out_objects.csv]
//            [--trace]              (print a per-query span timeline after
//                                    the results; in remote mode the daemon
//                                    returns its spans — behind a sharded
//                                    coordinator the tree includes every
//                                    shard's solve subtree)
//            [--connect host:port]  (run every query against an arspd: the
//                                    CSV ships inline, the daemon holds the
//                                    dataset/indexes/cache, and all flags
//                                    above work unchanged — repeats across
//                                    *separate* CLI runs hit the daemon's
//                                    result cache)
//            [--name NAME]          (daemon-side dataset name; defaults to
//                                    the --input path)
//   arsp_cli --connect host:port --name NAME --constraints ...
//                                  (query a dataset the daemon already
//                                   holds — e.g. an arspd --load preload —
//                                   without shipping any CSV)
//   arsp_cli --connect host:port --ping       (daemon liveness probe)
//   arsp_cli --connect host:port --shutdown   (drain the daemon)
//
// Local mode is a thin shell over ArspEngine (src/core/engine.h); remote
// mode speaks the src/net wire protocol through ArspClient and prints the
// same output. Algorithms come from the SolverRegistry — `--algo list`
// prints every registered solver; `--algo auto` (the default) lets the
// engine pick per the paper's §V guidance.
//
// CSV input format: object,prob,attr1,...,attrD (see src/io/csv.h). Lower
// attribute values are preferred; negate "higher is better" columns.
// A .arsp input (tools/arsp_pack) is mmap-loaded instead of parsed: columns
// and prebuilt indexes come straight from the file, so startup is O(1) in
// dataset size. In remote mode the daemon maps the path from its own
// filesystem — snapshot bytes never ship over the wire.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/task_arena.h"
#include "src/core/engine.h"
#include "src/io/csv.h"
#include "src/io/snapshot.h"
#include "src/net/client.h"
#include "src/obs/trace.h"
#include "src/simd/kernels.h"
#include "tools/cli_args.h"

namespace {

using namespace arsp;
using cli::CliArgs;

// --input paths ending in .arsp are columnar snapshots (tools/arsp_pack):
// mmap-loaded locally, or passed as a server-side path in remote mode (the
// daemon maps them itself — snapshot bytes never ship over the wire).
bool IsSnapshotPath(const std::string& path) {
  return path.size() > 5 &&
         path.compare(path.size() - 5, 5, ".arsp") == 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arsp_cli --input data.csv|data.arsp "
      "--constraints wr:l1,h1[,...]|rank:c\n"
      "                [--header] [--algo NAME|auto|list] [--opt k=v ...]\n"
      "                [--batch specs.txt] [--repeat N] [--stats]\n"
      "                [--threads N]\n"
      "                [--subset m%%[,m%%...]] [--topk K] [--threshold P]\n"
      "                [--instances out.csv] [--objects out.csv] [--trace]\n"
      "                [--connect host:port [--name NAME]]\n"
      "       arsp_cli --connect host:port --name NAME --constraints ...\n"
      "                (query a dataset already loaded on the daemon)\n"
      "       arsp_cli --connect host:port --ping|--shutdown\n"
      "run `arsp_cli --algo list` to enumerate the available solvers\n");
}

// --algo list: one line per registered solver, straight from the registry.
int ListSolvers() {
  std::printf("registered solvers:\n");
  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    if (!solver.ok()) continue;
    std::string caps;
    const uint32_t c = (*solver)->capabilities();
    if (c & kCapRequiresWeightRatios) caps += " [wr-only]";
    if (c & kCapRequires2d) caps += " [2d-only]";
    if (c & kCapRequiresSingleInstanceObjects) caps += " [single-instance]";
    if (c & kCapQuadraticTime) caps += " [quadratic]";
    if (c & kCapExponentialTime) caps += " [exponential]";
    if (c & kCapExponentialInVertices) caps += " [vertex-exponential]";
    if (c & kCapGoalPushdown) caps += " [goal-pushdown]";
    std::printf("  %-12s %-12s %s%s\n", name.c_str(),
                (*solver)->display_name(), (*solver)->description(),
                caps.c_str());
  }
  return 0;
}

// Display-normalized response: one shape both the local engine path and the
// wire path render through, so the two modes print byte-identical lines.
struct ShownResponse {
  bool complete = true;
  std::string goal;  ///< served goal, for partial results
  double solve_ms = 0.0;
  std::string solver;
  bool cache_hit = false;
  bool pushdown = false;
  int result_size = -1;  ///< CountNonZero; -1 for partials
  size_t ranked_size = 0;
  std::string stats_line;  ///< SolverStats::ToString()
};

ShownResponse Shown(const QueryResponse& resp) {
  ShownResponse s;
  s.complete = resp.result->is_complete();
  s.goal = resp.result->goal.ToString();
  s.solve_ms = resp.stats.solve_millis;
  s.solver = resp.solver;
  s.cache_hit = resp.cache_hit;
  s.pushdown = resp.pushdown;
  s.result_size = s.complete ? CountNonZero(*resp.result) : -1;
  s.ranked_size = resp.ranked.size();
  s.stats_line = resp.stats.ToString();
  return s;
}

ShownResponse Shown(const net::QueryResponseWire& resp) {
  ShownResponse s;
  s.complete = resp.complete;
  s.goal = resp.goal;
  s.solve_ms = resp.stats.solve_millis;
  s.solver = resp.solver;
  s.cache_hit = resp.cache_hit;
  s.pushdown = resp.pushdown;
  s.result_size = resp.result_size;
  s.ranked_size = resp.ranked.size();
  s.stats_line = resp.stats.ToSolverStats().ToString();
  return s;
}

// One line per response: wall time, resolved solver, cache reuse, and the
// result size — or, for goal-pruned partial results (no full instance
// vector exists), the answer size plus the execution mode.
void PrintResponseLine(const std::string& label, const ShownResponse& resp) {
  if (resp.complete) {
    std::printf("%scomputed ARSP in %.2f ms (%s%s); result size %d\n",
                label.c_str(), resp.solve_ms, resp.solver.c_str(),
                resp.cache_hit ? ", cache hit" : "", resp.result_size);
  } else {
    std::printf(
        "%scomputed %s in %.2f ms (%s%s, goal pushdown); %zu objects\n",
        label.c_str(), resp.goal.c_str(), resp.solve_ms, resp.solver.c_str(),
        resp.cache_hit ? ", cache hit" : "", resp.ranked_size);
  }
}

void PrintStatsLine(const ShownResponse& resp) {
  std::printf("%s cache_hit=%s pushdown=%s\n", resp.stats_line.c_str(),
              resp.cache_hit ? "true" : "false",
              resp.pushdown ? "true" : "false");
}

// Header of the ranked-answer block ("top-k objects by ..." / threshold).
// Takes the two fields it needs rather than a ShownResponse: building one
// costs an O(n) CountNonZero scan the header never uses.
void PrintRankedHeader(const CliArgs& args, bool pushdown,
                       size_t ranked_size) {
  const char* mode = pushdown ? "goal pushdown" : "post-hoc";
  if (args.threshold) {
    std::printf("\nobjects with Pr_rsky >= %g (%zu, via %s):\n",
                *args.threshold, ranked_size, mode);
  } else {
    std::printf("\ntop-%d objects by Pr_rsky (via %s):\n",
                args.topk.value_or(CliArgs::kDefaultTopk), mode);
  }
}

void PrintSweepHeader(const std::string& spec, const std::string& algo) {
  std::printf("\nsubset sweep (%s, algo %s):\n", spec.c_str(), algo.c_str());
  std::printf("  %5s %9s %10s %-12s %9s %9s %7s %-9s\n", "m%", "objects",
              "instances", "solver", "setup_ms", "solve_ms", "size", "mode");
}

// One sweep table row — the single definition both the local and remote
// sweeps print through, so the "local and remote output is byte-identical"
// invariant cannot drift when a column changes.
void PrintSweepRow(int pct, int num_objects, int num_instances,
                   double setup_ms, bool derived_goal,
                   const ShownResponse& shown) {
  // Size: the full ARSP size when the result is complete, the ranked
  // answer size for goal-pruned partial results.
  const std::string size = shown.complete
                               ? std::to_string(shown.result_size)
                               : std::to_string(shown.ranked_size) + "*";
  const char* mode =
      !derived_goal ? "full" : (shown.pushdown ? "pushdown" : "post-hoc");
  std::printf("  %4d%% %9d %10d %-12s %9.2f %9.2f %7s %-9s\n", pct,
              num_objects, num_instances, shown.solver.c_str(), setup_ms,
              shown.solve_ms, size.c_str(), mode);
}

void PrintSweepFootnote(bool derived_goal) {
  if (derived_goal) {
    std::printf("  (* = goal answer size; the full vector was pruned "
                "away)\n");
  }
}

void PrintIndexWorkLine(const ExecutionContext::IndexBuildStats& total) {
  std::printf(
      "index work across sweep: kd_builds=%lld rtree_builds=%lld "
      "score_maps=%lld score_reuses=%lld parent_index_hits=%lld\n",
      static_cast<long long>(total.kdtree_builds),
      static_cast<long long>(total.rtree_builds),
      static_cast<long long>(total.score_maps),
      static_cast<long long>(total.score_reuses),
      static_cast<long long>(total.parent_index_hits));
}

// Reads --batch specs (one per line, '#' comments) into spec_strings after
// the --constraints one; empty batch files are an error.
int CollectSpecs(const CliArgs& args, std::vector<std::string>* specs) {
  if (!args.constraints.empty()) specs->push_back(args.constraints);
  if (!args.batch_file.empty()) {
    std::ifstream in(args.batch_file);
    if (!in) {
      std::fprintf(stderr, "cannot read batch file %s\n",
                   args.batch_file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      line = Trim(line);
      if (line.empty() || line[0] == '#') continue;
      specs->push_back(line);
    }
    if (specs->empty()) {
      std::fprintf(stderr, "batch file %s has no constraint specs\n",
                   args.batch_file.c_str());
      return 1;
    }
  }
  if (specs->size() > 1 &&
      (!args.instances_out.empty() || !args.objects_out.empty())) {
    std::fprintf(stderr,
                 "--instances/--objects write one result and need a single "
                 "constraint spec (got %zu)\n",
                 specs->size());
    return 2;
  }
  return 0;
}

// Validates --opt and --algo without solving; usage errors exit 2 before
// anything runs (remote mode revalidates daemon-side, but the fast local
// reject keeps the failure mode identical in both modes).
int ValidateSolverChoice(const CliArgs& args, SolverOptions* options) {
  for (const std::string& opt : args.opts) {
    const Status st = options->ParseKeyValue(opt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (args.algo != "auto") {
    auto solver = SolverRegistry::Create(args.algo, *options);
    if (!solver.ok()) {
      std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
      return 2;
    }
  }
  return 0;
}

int WriteResultCsvs(const CliArgs& args, const ArspResult& result,
                    const UncertainDataset& dataset,
                    const std::vector<std::string>& names) {
  if (!args.instances_out.empty()) {
    const Status st = WriteTextFile(
        args.instances_out, FormatArspResultCsv(result, dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-instance results to %s\n",
                args.instances_out.c_str());
  }
  if (!args.objects_out.empty()) {
    const Status st = WriteTextFile(
        args.objects_out, FormatObjectResultCsv(result, dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-object results to %s\n", args.objects_out.c_str());
  }
  return 0;
}

// ------------------------------------------------------------- local mode

int RunLocal(const CliArgs& args,
             std::shared_ptr<const UncertainDataset> dataset,
             const std::vector<std::string>& names) {
  std::vector<std::string> spec_strings;
  if (const int rc = CollectSpecs(args, &spec_strings); rc != 0) return rc;

  SolverOptions options;
  if (const int rc = ValidateSolverChoice(args, &options); rc != 0) return rc;

  // Assemble one request per constraint spec; the engine owns dataset,
  // context pool, cache, and solver resolution from here on.
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(dataset);

  // --subset: the Fig. 6 m% sweep over engine-held prefix views. Each view
  // is a zero-copy window; pooled contexts derive from the base dataset's,
  // so the whole sweep performs one full index build (reported below).
  // --topk/--threshold turn the sweep's requests into goal queries.
  if (!args.subset_pcts.empty()) {
    auto constraints = ParseConstraintSpec(spec_strings[0], dataset->dim());
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return 2;
    }
    const bool derived_goal =
        args.topk.has_value() || args.threshold.has_value();
    PrintSweepHeader(spec_strings[0], args.algo);
    std::vector<DatasetHandle> view_handles;
    for (int pct : args.subset_pcts) {
      const int count = std::max(1, dataset->num_objects() * pct / 100);
      auto view_handle = engine.AddView(handle, ViewSpec::Prefix(count));
      if (!view_handle.ok()) {
        std::fprintf(stderr, "%s\n",
                     view_handle.status().ToString().c_str());
        return 1;
      }
      view_handles.push_back(*view_handle);
      QueryRequest request;
      request.dataset = *view_handle;
      request.constraints = *constraints;
      request.solver = args.algo;
      request.options = options;
      if (args.threshold) {
        request.derived.kind = DerivedKind::kObjectsAboveThreshold;
        request.derived.threshold = *args.threshold;
      } else if (args.topk) {
        request.derived.kind = DerivedKind::kTopKObjects;
        request.derived.k = *args.topk;
      }
      request.parallelism = args.threads;
      auto response = engine.Solve(request);
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
      }
      const DatasetView view = engine.view(*view_handle);
      const ShownResponse shown = Shown(*response);
      PrintSweepRow(pct, view.num_objects(), view.num_instances(),
                    response->stats.setup_millis, derived_goal, shown);
      if (args.stats) PrintStatsLine(shown);
    }
    PrintSweepFootnote(derived_goal);
    // One full build on the base context + per-view delta work is the
    // data-plane invariant; the counters make it visible (and are what
    // tests/engine_view_test.cc asserts).
    ExecutionContext::IndexBuildStats total = engine.index_stats(handle);
    for (const DatasetHandle& vh : view_handles) {
      total += engine.index_stats(vh);
    }
    PrintIndexWorkLine(total);
    return 0;
  }

  std::vector<QueryRequest> requests;
  for (const std::string& spec : spec_strings) {
    auto constraints = ParseConstraintSpec(spec, dataset->dim());
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return 2;
    }
    QueryRequest request;
    request.dataset = handle;
    request.constraints = std::move(*constraints);
    request.solver = args.algo;
    request.options = options;
    if (args.threshold) {
      request.derived.kind = DerivedKind::kObjectsAboveThreshold;
      request.derived.threshold = *args.threshold;
    } else {
      request.derived.kind = DerivedKind::kTopKObjects;
      request.derived.k = args.topk.value_or(CliArgs::kDefaultTopk);
    }
    // CSV outputs need the complete instance vector, which a goal-pruned
    // partial result no longer carries: force the post-hoc path.
    request.allow_pushdown =
        args.instances_out.empty() && args.objects_out.empty();
    request.parallelism = args.threads;
    requests.push_back(std::move(request));
  }

  // Solve — repeats re-issue the whole request list, so runs past the first
  // are served by the engine's result cache (visible via --stats).
  // --trace gives every request its own Trace (a Trace is single-threaded,
  // but SolveBatch drives each request on one thread, so one per request is
  // safe under concurrency); rebuilt per round so the printed trees show
  // the final round — with repeats, that is the cache-hit timeline.
  std::vector<StatusOr<QueryResponse>> outcomes;
  std::vector<std::unique_ptr<obs::Trace>> traces;
  for (int round = 0; round < args.repeat; ++round) {
    if (args.repeat > 1) std::printf("-- run %d/%d\n", round + 1, args.repeat);
    if (args.trace) {
      traces.clear();
      for (QueryRequest& request : requests) {
        traces.push_back(std::make_unique<obs::Trace>(obs::Trace::NewTraceId(),
                                                      "cli_query"));
        request.trace = traces.back().get();
      }
    }
    outcomes = engine.SolveBatch(requests);  // size-1 batches run serially
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const std::string label =
          requests.size() > 1 ? "[" + spec_strings[i] + "] " : "";
      if (!outcomes[i].ok()) {
        std::fprintf(stderr, "%s%s\n", label.c_str(),
                     outcomes[i].status().ToString().c_str());
        return 1;
      }
      const ShownResponse shown = Shown(*outcomes[i]);
      PrintResponseLine(label, shown);
      if (args.stats) PrintStatsLine(shown);
    }
  }

  // Report the derived rankings of the final round.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const QueryResponse& resp = *outcomes[i];
    if (requests.size() > 1) {
      std::printf("\n[%s]", spec_strings[i].c_str());
    }
    PrintRankedHeader(args, resp.pushdown, resp.ranked.size());
    for (const auto& [object, prob] : resp.ranked) {
      std::printf("  %-20s %.4f\n", names[static_cast<size_t>(object)].c_str(),
                  prob);
    }
  }

  if (args.trace) {
    for (size_t i = 0; i < traces.size(); ++i) {
      obs::Trace& trace = *traces[i];
      trace.Annotate("constraints", spec_strings[i]);
      trace.Finish();
      std::printf("\n%s", obs::RenderSpanTree(trace.root(), trace.id()).c_str());
      obs::MaybeWriteChromeTrace(trace.root(), trace.id());
    }
  }

  if (args.stats) {
    // Engine-level aggregates: per-request latency over the ring window
    // plus result-cache effectiveness for the whole run.
    const ArspEngine::CacheStats cache = engine.cache_stats();
    std::printf("engine: latency %s cache_hits=%lld cache_misses=%lld "
                "entries=%zu kernel=%s threads=%d\n",
                engine.latency_stats().ToString().c_str(),
                static_cast<long long>(cache.hits),
                static_cast<long long>(cache.misses), cache.entries,
                simd::ActiveArchName(), CoreBudget::Total());
  }

  return WriteResultCsvs(args, *outcomes[0]->result, *dataset, names);
}

// ------------------------------------------------------------ remote mode

// Builds the wire form of one query from the CLI flags.
net::QueryRequestWire MakeWireRequest(const CliArgs& args,
                                      const std::string& dataset_name,
                                      const std::string& spec) {
  net::QueryRequestWire request;
  request.dataset = dataset_name;
  request.constraint_spec = spec;
  request.solver = args.algo;
  request.options = args.opts;
  if (args.threshold) {
    request.derived_kind = net::WireDerivedKind::kObjectsAboveThreshold;
    request.threshold = *args.threshold;
  } else {
    request.derived_kind = net::WireDerivedKind::kTopKObjects;
    request.k = args.topk.value_or(CliArgs::kDefaultTopk);
  }
  const bool need_instances =
      !args.instances_out.empty() || !args.objects_out.empty();
  request.allow_pushdown = !need_instances;
  request.include_instances = need_instances;
  request.parallelism = args.threads;
  // trace_id stays 0: the daemon (or coordinator) mints one and returns it
  // with the serialized spans.
  request.want_trace = args.trace;
  return request;
}

// --trace output for a wire response: decode the daemon's serialized span
// tree and print the same timeline local mode renders. Behind a sharded
// coordinator the tree carries one shard=N subtree per scattered solve.
void PrintWireTrace(const net::QueryResponseWire& resp) {
  if (resp.trace_spans.empty()) {
    std::fprintf(stderr, "daemon returned no trace spans\n");
    return;
  }
  std::vector<obs::Span> spans;
  if (!obs::DeserializeSpans(resp.trace_spans, &spans) || spans.empty()) {
    std::fprintf(stderr, "daemon returned an undecodable trace\n");
    return;
  }
  std::printf("\n%s", obs::RenderSpanTree(spans[0], resp.trace_id).c_str());
  obs::MaybeWriteChromeTrace(spans[0], resp.trace_id);
}

void PrintRankedEntries(const std::vector<net::RankedEntry>& ranked,
                        const std::vector<std::string>& local_names) {
  for (const net::RankedEntry& entry : ranked) {
    // Prefer the daemon's name (authoritative for its dataset); fall back
    // to the locally parsed names, then the raw id.
    std::string name = entry.name;
    if (name.empty() && entry.object_id >= 0 &&
        static_cast<size_t>(entry.object_id) < local_names.size()) {
      name = local_names[static_cast<size_t>(entry.object_id)];
    }
    if (name.empty()) name = std::to_string(entry.object_id);
    std::printf("  %-20s %.4f\n", name.c_str(), entry.prob);
  }
}

int RunRemote(const CliArgs& args,
              std::shared_ptr<const UncertainDataset> dataset,
              const std::vector<std::string>& names,
              const std::string& csv_text) {
  std::vector<std::string> spec_strings;
  if (const int rc = CollectSpecs(args, &spec_strings); rc != 0) return rc;

  SolverOptions options;
  if (const int rc = ValidateSolverChoice(args, &options); rc != 0) return rc;

  auto client = net::ArspClient::Connect(args.host, args.port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  const std::string dataset_name =
      args.remote_name.empty() ? args.input : args.remote_name;
  int dim = 0;
  int num_objects = 0;
  if (dataset != nullptr) {
    // Register (or idempotently reuse) the dataset under its name. The CSV
    // ships inline, so the daemon needs no access to the local filesystem.
    net::LoadDatasetRequest load;
    load.name = dataset_name;
    if (IsSnapshotPath(args.input)) {
      // Ship the path, not the bytes: the daemon mmaps the snapshot from
      // its own filesystem (LoadSource::kCsvFile + .arsp suffix).
      load.source = net::LoadSource::kCsvFile;
      load.payload = args.input;
    } else {
      load.source = net::LoadSource::kCsvText;
      load.payload = csv_text;
      load.header = args.header;
    }
    auto loaded = client->LoadDataset(load);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("daemon %s dataset '%s' (%d objects / %d instances)\n",
                loaded->reused ? "reused" : "loaded", dataset_name.c_str(),
                loaded->num_objects, loaded->num_instances);
    dim = loaded->dim;
    num_objects = loaded->num_objects;
  } else {
    // --name without --input: the dataset must already live on the daemon
    // (an arspd --load preload or an earlier client's registration); its
    // shape comes from the STATS listing.
    auto stats = client->Stats(dataset_name);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    for (const net::DatasetInfo& info : stats->datasets) {
      if (info.name == dataset_name) {
        dim = info.dim;
        num_objects = info.num_objects;
        std::printf("daemon dataset '%s' (%d objects / %d instances, "
                    "d = %d)\n",
                    dataset_name.c_str(), info.num_objects,
                    info.num_instances, info.dim);
        break;
      }
    }
    if (dim == 0) {
      std::fprintf(stderr, "dataset '%s' is not loaded on the daemon\n",
                   dataset_name.c_str());
      return 1;
    }
  }

  // Constraint specs are validated locally against the dataset's
  // dimensionality so a typo exits 2 (usage), exactly like local mode; the
  // daemon re-validates against its own copy anyway.
  for (const std::string& spec : spec_strings) {
    auto constraints = ParseConstraintSpec(spec, dim);
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return 2;
    }
  }

  // --subset: the m% sweep against daemon-held prefix views. View names
  // encode the window, so repeated sweeps (separate CLI runs included)
  // reuse the daemon's views, derived contexts, and cache entries.
  if (!args.subset_pcts.empty()) {
    const bool derived_goal =
        args.topk.has_value() || args.threshold.has_value();
    PrintSweepHeader(spec_strings[0], args.algo);
    for (int pct : args.subset_pcts) {
      const int count = std::max(1, num_objects * pct / 100);
      net::AddViewRequest add;
      add.base_name = dataset_name;
      add.view_name = dataset_name + "#prefix:" + std::to_string(count);
      add.spec = ViewSpec::Prefix(count);
      auto view = client->AddView(add);
      if (!view.ok()) {
        std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
        return 1;
      }
      net::QueryRequestWire request =
          MakeWireRequest(args, view->name, spec_strings[0]);
      if (!derived_goal) {
        // Match local sweep semantics: no explicit goal flags means a full
        // solve per prefix, not the default top-k.
        request.derived_kind = net::WireDerivedKind::kNone;
      }
      auto response = client->Query(request);
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
      }
      const ShownResponse shown = Shown(*response);
      PrintSweepRow(pct, view->num_objects, view->num_instances,
                    response->stats.setup_millis, derived_goal, shown);
      if (args.stats) PrintStatsLine(shown);
    }
    PrintSweepFootnote(derived_goal);
    auto stats = client->Stats(dataset_name);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    ExecutionContext::IndexBuildStats total;
    total.kdtree_builds = stats->kdtree_builds;
    total.rtree_builds = stats->rtree_builds;
    total.score_maps = stats->score_maps;
    total.score_reuses = stats->score_reuses;
    total.parent_index_hits = stats->parent_index_hits;
    PrintIndexWorkLine(total);
    return 0;
  }

  // Queries run sequentially over one connection; parallelism is the
  // daemon's concern (its engine + many connections), not the CLI's.
  std::vector<net::QueryResponseWire> outcomes(spec_strings.size());
  for (int round = 0; round < args.repeat; ++round) {
    if (args.repeat > 1) std::printf("-- run %d/%d\n", round + 1, args.repeat);
    for (size_t i = 0; i < spec_strings.size(); ++i) {
      const std::string label =
          spec_strings.size() > 1 ? "[" + spec_strings[i] + "] " : "";
      auto response = client->Query(
          MakeWireRequest(args, dataset_name, spec_strings[i]));
      if (!response.ok()) {
        std::fprintf(stderr, "%s%s\n", label.c_str(),
                     response.status().ToString().c_str());
        return 1;
      }
      outcomes[i] = std::move(*response);
      const ShownResponse shown = Shown(outcomes[i]);
      PrintResponseLine(label, shown);
      if (args.stats) PrintStatsLine(shown);
    }
  }

  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (spec_strings.size() > 1) {
      std::printf("\n[%s]", spec_strings[i].c_str());
    }
    PrintRankedHeader(args, outcomes[i].pushdown, outcomes[i].ranked.size());
    PrintRankedEntries(outcomes[i].ranked, names);
  }

  if (args.trace) {
    for (const net::QueryResponseWire& resp : outcomes) PrintWireTrace(resp);
  }

  if (args.stats) {
    auto stats = client->Stats();
    if (stats.ok()) {
      std::printf("daemon: latency requests=%lld window=%lld min_ms=%g "
                  "mean_ms=%g p50_ms=%g p95_ms=%g p99_ms=%g p999_ms=%g "
                  "cache_hits=%lld "
                  "cache_misses=%lld entries=%llu pooled_contexts=%llu "
                  "kernel=%s threads=%lld\n",
                  static_cast<long long>(stats->latency_count),
                  static_cast<long long>(stats->latency_window),
                  stats->latency_min_ms, stats->latency_mean_ms,
                  stats->latency_p50_ms, stats->latency_p95_ms,
                  stats->latency_p99_ms, stats->latency_p999_ms,
                  static_cast<long long>(stats->cache_hits),
                  static_cast<long long>(stats->cache_misses),
                  static_cast<unsigned long long>(stats->cache_entries),
                  static_cast<unsigned long long>(stats->pooled_contexts),
                  stats->kernel_arch.empty() ? "unknown"
                                             : stats->kernel_arch.c_str(),
                  static_cast<long long>(stats->query_threads));
      std::printf("daemon: peak_rss_mb=%.1f\n",
                  static_cast<double>(stats->peak_rss_bytes) / (1024.0 * 1024.0));
    }
  }

  if (!args.instances_out.empty() || !args.objects_out.empty()) {
    // The wire response carries the full instance vector (the request
    // forced the post-hoc path); formatting uses the locally parsed
    // dataset, which is byte-identical input to what the daemon holds.
    const net::QueryResponseWire& resp = outcomes[0];
    if (!resp.complete ||
        static_cast<int>(resp.instance_probs.size()) !=
            dataset->num_instances()) {
      std::fprintf(stderr,
                   "daemon returned no usable instance vector (%zu probs "
                   "for %d instances)\n",
                   resp.instance_probs.size(), dataset->num_instances());
      return 1;
    }
    ArspResult result;
    result.instance_probs = resp.instance_probs;
    return WriteResultCsvs(args, result, *dataset, names);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  if (!cli::ParseCliArgs(argc, argv, &args, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    PrintUsage();
    return 2;
  }
  if (args.algo == "list") return ListSolvers();

  // Daemon control verbs need no dataset.
  if (args.ping || args.shutdown) {
    auto client = net::ArspClient::Connect(args.host, args.port);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
      return 1;
    }
    const Status st = args.ping ? client->Ping() : client->Shutdown();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", args.ping ? "pong" : "daemon shutting down");
    return 0;
  }

  // --connect --name without --input: query a dataset the daemon already
  // holds; there is nothing to parse locally.
  if (args.input.empty()) {
    return RunRemote(args, nullptr, {}, std::string());
  }

  // Both modes load the input locally: local mode queries it, remote mode
  // validates against it (dims, constraint specs) and prints names from it.
  // CSV inputs ship their raw text to the daemon; snapshot inputs (.arsp)
  // are mmap-loaded here and referenced by server-side path over the wire.
  std::string csv_text;
  std::vector<std::string> names;
  std::shared_ptr<const UncertainDataset> dataset;
  if (IsSnapshotPath(args.input)) {
    auto loaded = snapshot::LoadSnapshot(args.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", args.input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = loaded->dataset;
    names = std::move(loaded->object_names);
    if (names.empty()) {
      for (int j = 0; j < dataset->num_objects(); ++j) {
        names.push_back(std::to_string(j));
      }
    }
    std::printf("%s snapshot %s (%zu bytes): %d objects / %d instances, "
                "d = %d\n",
                loaded->mapped ? "mapped" : "read", args.input.c_str(),
                loaded->bytes_mapped, dataset->num_objects(),
                dataset->num_instances(), dataset->dim());
  } else {
    {
      std::ifstream file(args.input);
      if (!file) {
        std::fprintf(stderr, "error loading %s: cannot open\n",
                     args.input.c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      csv_text = buffer.str();
    }
    auto loaded = ParseUncertainDatasetCsv(csv_text, args.header, &names);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", args.input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::make_shared<const UncertainDataset>(std::move(*loaded));
    std::printf("loaded %d objects / %d instances, d = %d\n",
                dataset->num_objects(), dataset->num_instances(),
                dataset->dim());
  }

  return args.remote ? RunRemote(args, dataset, names, csv_text)
                     : RunLocal(args, dataset, names);
}
