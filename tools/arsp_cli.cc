// Copyright 2026 The ARSP Authors.
//
// arsp_cli — run ARSP queries on CSV datasets from the command line.
//
// Usage:
//   arsp_cli --algo list                              (enumerate solvers)
//   arsp_cli --input data.csv [--header]
//            --constraints wr:0.5,2.0[,l2,h2,...]   (weight ratios), or
//            --constraints rank:c                   (weak ranking ω1≥...≥ωc+1)
//            [--batch specs.txt]    (one constraint spec per line, solved
//                                    concurrently through the engine)
//            [--repeat N]           (re-issue the request list N times; the
//                                    engine's result cache serves repeats)
//            [--algo NAME|auto] [--opt key=value ...] [--stats]
//            [--topk K] [--threshold P]
//            [--instances out_instances.csv] [--objects out_objects.csv]
//
// The CLI is a thin shell over ArspEngine (src/core/engine.h): requests go
// through the engine's context pool, result cache, and batch executor.
// Algorithms come from the SolverRegistry — `--algo list` prints every
// registered solver with its capabilities; `--algo auto` (the default) lets
// the engine pick per the paper's §V guidance.
//
// CSV input format: object,prob,attr1,...,attrD (see src/io/csv.h). Lower
// attribute values are preferred; negate "higher is better" columns.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/io/csv.h"

namespace {

using namespace arsp;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arsp_cli --input data.csv --constraints wr:l1,h1[,...]|rank:c\n"
      "                [--header] [--algo NAME|auto|list] [--opt k=v ...]\n"
      "                [--batch specs.txt] [--repeat N] [--stats]\n"
      "                [--topk K] [--threshold P]\n"
      "                [--instances out.csv] [--objects out.csv]\n"
      "run `arsp_cli --algo list` to enumerate the available solvers\n");
}

struct Args {
  std::string input;
  std::string constraints;
  std::string batch_file;
  std::string algo = "auto";
  std::vector<std::string> opts;
  bool header = false;
  bool stats = false;
  int repeat = 1;
  int topk = 10;
  std::optional<double> threshold;
  std::string instances_out;
  std::string objects_out;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      args->input = v;
    } else if (flag == "--constraints") {
      const char* v = next();
      if (v == nullptr) return false;
      args->constraints = v;
    } else if (flag == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      args->batch_file = v;
    } else if (flag == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--opt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opts.push_back(v);
    } else if (flag == "--header") {
      args->header = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--repeat") {
      const char* v = next();
      if (v == nullptr) return false;
      args->repeat = std::atoi(v);
      if (args->repeat < 1) return false;
    } else if (flag == "--topk") {
      const char* v = next();
      if (v == nullptr) return false;
      args->topk = std::atoi(v);
    } else if (flag == "--threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threshold = std::atof(v);
    } else if (flag == "--instances") {
      const char* v = next();
      if (v == nullptr) return false;
      args->instances_out = v;
    } else if (flag == "--objects") {
      const char* v = next();
      if (v == nullptr) return false;
      args->objects_out = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  // Solver names are case-insensitive everywhere (registry and engine);
  // normalize once so the "list"/"auto" handling agrees.
  args->algo = SolverRegistry::Normalize(args->algo);
  if (args->algo == "list") return true;  // no input needed
  return !args->input.empty() &&
         (!args->constraints.empty() || !args->batch_file.empty());
}

// --algo list: one line per registered solver, straight from the registry.
int ListSolvers() {
  std::printf("registered solvers:\n");
  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    if (!solver.ok()) continue;
    std::string caps;
    const uint32_t c = (*solver)->capabilities();
    if (c & kCapRequiresWeightRatios) caps += " [wr-only]";
    if (c & kCapRequires2d) caps += " [2d-only]";
    if (c & kCapRequiresSingleInstanceObjects) caps += " [single-instance]";
    if (c & kCapQuadraticTime) caps += " [quadratic]";
    if (c & kCapExponentialTime) caps += " [exponential]";
    if (c & kCapExponentialInVertices) caps += " [vertex-exponential]";
    std::printf("  %-12s %-12s %s%s\n", name.c_str(),
                (*solver)->display_name(), (*solver)->description(),
                caps.c_str());
  }
  return 0;
}

// One line per response: wall time, resolved solver, cache reuse, size.
void PrintResponseLine(const std::string& label, const QueryResponse& resp) {
  std::printf("%scomputed ARSP in %.2f ms (%s%s); result size %d\n",
              label.c_str(), resp.stats.solve_millis, resp.solver.c_str(),
              resp.cache_hit ? ", cache hit" : "",
              CountNonZero(*resp.result));
}

void PrintStatsLine(const QueryResponse& resp) {
  std::printf("%s cache_hit=%s\n", resp.stats.ToString().c_str(),
              resp.cache_hit ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.algo == "list") return ListSolvers();

  std::vector<std::string> names;
  auto loaded = LoadUncertainDatasetCsv(args.input, args.header, &names);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", args.input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto dataset =
      std::make_shared<const UncertainDataset>(std::move(*loaded));
  std::printf("loaded %d objects / %d instances, d = %d\n",
              dataset->num_objects(), dataset->num_instances(),
              dataset->dim());

  // Collect constraint specs: --constraints and/or every non-comment line
  // of the --batch file.
  std::vector<std::string> spec_strings;
  if (!args.constraints.empty()) spec_strings.push_back(args.constraints);
  if (!args.batch_file.empty()) {
    std::ifstream in(args.batch_file);
    if (!in) {
      std::fprintf(stderr, "cannot read batch file %s\n",
                   args.batch_file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      line = Trim(line);
      if (line.empty() || line[0] == '#') continue;
      spec_strings.push_back(line);
    }
    if (spec_strings.empty()) {
      std::fprintf(stderr, "batch file %s has no constraint specs\n",
                   args.batch_file.c_str());
      return 1;
    }
  }
  if (spec_strings.size() > 1 &&
      (!args.instances_out.empty() || !args.objects_out.empty())) {
    std::fprintf(stderr,
                 "--instances/--objects write one result and need a single "
                 "constraint spec (got %zu)\n",
                 spec_strings.size());
    return 2;
  }

  SolverOptions options;
  for (const std::string& opt : args.opts) {
    const Status st = options.ParseKeyValue(opt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  // Unknown solver names and rejected options are usage errors (exit 2),
  // caught before any solving starts. "auto" resolves per request, so its
  // options can only be validated against the concrete solver later.
  if (args.algo != "auto") {
    auto solver = SolverRegistry::Create(args.algo, options);
    if (!solver.ok()) {
      std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
      return 2;
    }
  }

  // Assemble one request per constraint spec; the engine owns dataset,
  // context pool, cache, and solver resolution from here on.
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(dataset);
  std::vector<QueryRequest> requests;
  for (const std::string& spec : spec_strings) {
    auto constraints = ParseConstraintSpec(spec, dataset->dim());
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return 2;
    }
    QueryRequest request;
    request.dataset = handle;
    request.constraints = std::move(*constraints);
    request.solver = args.algo;
    request.options = options;
    if (args.threshold) {
      request.derived.kind = DerivedKind::kObjectsAboveThreshold;
      request.derived.threshold = *args.threshold;
    } else {
      request.derived.kind = DerivedKind::kTopKObjects;
      request.derived.k = args.topk;
    }
    requests.push_back(std::move(request));
  }

  // Solve — repeats re-issue the whole request list, so runs past the first
  // are served by the engine's result cache (visible via --stats).
  std::vector<StatusOr<QueryResponse>> outcomes;
  for (int round = 0; round < args.repeat; ++round) {
    if (args.repeat > 1) std::printf("-- run %d/%d\n", round + 1, args.repeat);
    outcomes = engine.SolveBatch(requests);  // size-1 batches run serially
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const std::string label =
          requests.size() > 1 ? "[" + spec_strings[i] + "] " : "";
      if (!outcomes[i].ok()) {
        std::fprintf(stderr, "%s%s\n", label.c_str(),
                     outcomes[i].status().ToString().c_str());
        return 1;
      }
      PrintResponseLine(label, *outcomes[i]);
      if (args.stats) PrintStatsLine(*outcomes[i]);
    }
  }

  // Report the derived rankings of the final round.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const QueryResponse& resp = *outcomes[i];
    if (requests.size() > 1) {
      std::printf("\n[%s]", spec_strings[i].c_str());
    }
    if (args.threshold) {
      std::printf("\nobjects with Pr_rsky >= %g (%zu):\n", *args.threshold,
                  resp.ranked.size());
    } else {
      std::printf("\ntop-%d objects by Pr_rsky:\n", args.topk);
    }
    for (const auto& [object, prob] : resp.ranked) {
      std::printf("  %-20s %.4f\n", names[static_cast<size_t>(object)].c_str(),
                  prob);
    }
  }

  const ArspResult& result = *outcomes[0]->result;
  if (!args.instances_out.empty()) {
    const Status st = WriteTextFile(
        args.instances_out, FormatArspResultCsv(result, *dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-instance results to %s\n",
                args.instances_out.c_str());
  }
  if (!args.objects_out.empty()) {
    const Status st = WriteTextFile(
        args.objects_out, FormatObjectResultCsv(result, *dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-object results to %s\n", args.objects_out.c_str());
  }
  return 0;
}
