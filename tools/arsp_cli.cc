// Copyright 2026 The ARSP Authors.
//
// arsp_cli — run ARSP queries on CSV datasets from the command line.
//
// Usage:
//   arsp_cli --algo list                              (enumerate solvers)
//   arsp_cli --input data.csv [--header]
//            --constraints wr:0.5,2.0[,l2,h2,...]   (weight ratios), or
//            --constraints rank:c                   (weak ranking ω1≥...≥ωc+1)
//            [--algo NAME] [--opt key=value ...] [--stats]
//            [--topk K] [--threshold P]
//            [--instances out_instances.csv] [--objects out_objects.csv]
//
// Algorithms come from the SolverRegistry — `--algo list` prints every
// registered solver with its capabilities; there is no hard-coded whitelist.
//
// CSV input format: object,prob,attr1,...,attrD (see src/io/csv.h). Lower
// attribute values are preferred; negate "higher is better" columns.

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/queries.h"
#include "src/core/solver.h"
#include "src/io/csv.h"
#include "src/prefs/constraint_generators.h"
#include "src/prefs/preference_region.h"

namespace {

using namespace arsp;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arsp_cli --input data.csv --constraints wr:l1,h1[,...]|rank:c\n"
      "                [--header] [--algo NAME|list] [--opt key=value ...]\n"
      "                [--stats] [--topk K] [--threshold P]\n"
      "                [--instances out.csv] [--objects out.csv]\n"
      "run `arsp_cli --algo list` to enumerate the available solvers\n");
}

struct Args {
  std::string input;
  std::string constraints;
  std::string algo = "kdtt+";
  std::vector<std::string> opts;
  bool header = false;
  bool stats = false;
  int topk = 10;
  std::optional<double> threshold;
  std::string instances_out;
  std::string objects_out;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      args->input = v;
    } else if (flag == "--constraints") {
      const char* v = next();
      if (v == nullptr) return false;
      args->constraints = v;
    } else if (flag == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--opt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opts.push_back(v);
    } else if (flag == "--header") {
      args->header = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--topk") {
      const char* v = next();
      if (v == nullptr) return false;
      args->topk = std::atoi(v);
    } else if (flag == "--threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threshold = std::atof(v);
    } else if (flag == "--instances") {
      const char* v = next();
      if (v == nullptr) return false;
      args->instances_out = v;
    } else if (flag == "--objects") {
      const char* v = next();
      if (v == nullptr) return false;
      args->objects_out = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  if (args->algo == "list") return true;  // no input needed
  return !args->input.empty() && !args->constraints.empty();
}

// Parses "wr:0.5,2.0,..." into weight ratio ranges.
std::optional<std::vector<std::pair<double, double>>> ParseWrSpec(
    const std::string& spec) {
  std::vector<double> values;
  std::string token;
  for (char c : spec) {
    if (c == ',') {
      values.push_back(std::atof(token.c_str()));
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) values.push_back(std::atof(token.c_str()));
  if (values.empty() || values.size() % 2 != 0) return std::nullopt;
  std::vector<std::pair<double, double>> ranges;
  for (size_t i = 0; i < values.size(); i += 2) {
    ranges.emplace_back(values[i], values[i + 1]);
  }
  return ranges;
}

// --algo list: one line per registered solver, straight from the registry.
int ListSolvers() {
  std::printf("registered solvers:\n");
  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    if (!solver.ok()) continue;
    std::string caps;
    const uint32_t c = (*solver)->capabilities();
    if (c & kCapRequiresWeightRatios) caps += " [wr-only]";
    if (c & kCapRequires2d) caps += " [2d-only]";
    if (c & kCapRequiresSingleInstanceObjects) caps += " [single-instance]";
    if (c & kCapQuadraticTime) caps += " [quadratic]";
    if (c & kCapExponentialTime) caps += " [exponential]";
    if (c & kCapExponentialInVertices) caps += " [vertex-exponential]";
    std::printf("  %-12s %-12s %s%s\n", name.c_str(),
                (*solver)->display_name(), (*solver)->description(),
                caps.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.algo == "list") return ListSolvers();

  std::vector<std::string> names;
  auto dataset = LoadUncertainDatasetCsv(args.input, args.header, &names);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", args.input.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %d objects / %d instances, d = %d\n",
              dataset->num_objects(), dataset->num_instances(),
              dataset->dim());

  // Build the execution context from the constraint spec: weight-ratio
  // contexts keep the ratios (DUAL-family solvers need them) and derive the
  // preference region lazily; rank contexts carry the region directly.
  std::optional<ExecutionContext> context;
  if (args.constraints.rfind("wr:", 0) == 0) {
    auto ranges = ParseWrSpec(args.constraints.substr(3));
    if (!ranges) {
      std::fprintf(stderr, "bad weight-ratio spec '%s'\n",
                   args.constraints.c_str());
      return 2;
    }
    if (static_cast<int>(ranges->size()) + 1 != dataset->dim()) {
      std::fprintf(stderr, "need %d ratio ranges for d=%d data (got %zu)\n",
                   dataset->dim() - 1, dataset->dim(), ranges->size());
      return 2;
    }
    auto wr = WeightRatioConstraints::Create(*ranges);
    if (!wr.ok()) {
      std::fprintf(stderr, "%s\n", wr.status().ToString().c_str());
      return 2;
    }
    context.emplace(*dataset, std::move(*wr));
  } else if (args.constraints.rfind("rank:", 0) == 0) {
    const int c = std::atoi(args.constraints.c_str() + 5);
    if (c < 0 || c > dataset->dim() - 1) {
      std::fprintf(stderr, "rank constraint count must be in [0, %d]\n",
                   dataset->dim() - 1);
      return 2;
    }
    auto region = PreferenceRegion::FromLinearConstraints(
        MakeWeakRankingConstraints(dataset->dim(), c));
    if (!region.ok()) {
      std::fprintf(stderr, "%s\n", region.status().ToString().c_str());
      return 2;
    }
    context.emplace(*dataset, std::move(*region));
  } else {
    std::fprintf(stderr, "constraints must start with 'wr:' or 'rank:'\n");
    return 2;
  }

  // Create + configure the solver through the registry.
  SolverOptions options;
  for (const std::string& opt : args.opts) {
    const Status st = options.ParseKeyValue(opt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  auto solver = SolverRegistry::Create(args.algo, options);
  if (!solver.ok()) {
    std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
    return 2;
  }

  auto result = (*solver)->Solve(*context);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const SolverStats& stats = context->last_stats();
  std::printf("computed ARSP in %.2f ms (%s); result size %d\n",
              stats.solve_millis, (*solver)->display_name(),
              CountNonZero(*result));
  if (args.stats) std::printf("%s\n", stats.ToString().c_str());

  // Report.
  if (args.threshold) {
    const auto above =
        ObjectsAboveThreshold(*result, *dataset, *args.threshold);
    std::printf("\nobjects with Pr_rsky >= %g (%zu):\n", *args.threshold,
                above.size());
    for (const auto& [object, prob] : above) {
      std::printf("  %-20s %.4f\n",
                  names[static_cast<size_t>(object)].c_str(), prob);
    }
  } else {
    std::printf("\ntop-%d objects by Pr_rsky:\n", args.topk);
    for (const auto& [object, prob] :
         TopKObjects(*result, *dataset, args.topk)) {
      std::printf("  %-20s %.4f\n",
                  names[static_cast<size_t>(object)].c_str(), prob);
    }
  }

  if (!args.instances_out.empty()) {
    const Status st = WriteTextFile(
        args.instances_out, FormatArspResultCsv(*result, *dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-instance results to %s\n",
                args.instances_out.c_str());
  }
  if (!args.objects_out.empty()) {
    const Status st = WriteTextFile(
        args.objects_out, FormatObjectResultCsv(*result, *dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-object results to %s\n", args.objects_out.c_str());
  }
  return 0;
}
