// Copyright 2026 The ARSP Authors.
//
// arsp_cli — run ARSP queries on CSV datasets from the command line.
//
// Usage:
//   arsp_cli --algo list                              (enumerate solvers)
//   arsp_cli --input data.csv [--header]
//            --constraints wr:0.5,2.0[,l2,h2,...]   (weight ratios), or
//            --constraints rank:c                   (weak ranking ω1≥...≥ωc+1)
//            [--batch specs.txt]    (one constraint spec per line, solved
//                                    concurrently through the engine)
//            [--repeat N]           (re-issue the request list N times; the
//                                    engine's result cache serves repeats)
//            [--subset m%[,m%...]]  (run the query per object-prefix view —
//                                    the paper's Fig. 6 m% sweep — and print
//                                    a per-subset stats table; views derive
//                                    their contexts from the base dataset's,
//                                    so the sweep pays one full index build.
//                                    Combine with --topk/--threshold to make
//                                    the sweep goal-aware: pushdown-capable
//                                    solvers prune per prefix)
//            [--algo NAME|auto] [--opt key=value ...] [--stats]
//            [--topk K] [--threshold P]   (derived-goal queries; pushed down
//                                    into kCapGoalPushdown solvers as bound
//                                    refinement with early termination,
//                                    post-hoc slicing otherwise — the output
//                                    reports which path ran)
//            [--instances out_instances.csv] [--objects out_objects.csv]
//
// The CLI is a thin shell over ArspEngine (src/core/engine.h): requests go
// through the engine's context pool, result cache, and batch executor.
// Algorithms come from the SolverRegistry — `--algo list` prints every
// registered solver with its capabilities; `--algo auto` (the default) lets
// the engine pick per the paper's §V guidance.
//
// CSV input format: object,prob,attr1,...,attrD (see src/io/csv.h). Lower
// attribute values are preferred; negate "higher is better" columns.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/io/csv.h"

namespace {

using namespace arsp;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arsp_cli --input data.csv --constraints wr:l1,h1[,...]|rank:c\n"
      "                [--header] [--algo NAME|auto|list] [--opt k=v ...]\n"
      "                [--batch specs.txt] [--repeat N] [--stats]\n"
      "                [--subset m%%[,m%%...]] [--topk K] [--threshold P]\n"
      "                [--instances out.csv] [--objects out.csv]\n"
      "run `arsp_cli --algo list` to enumerate the available solvers\n");
}

struct Args {
  std::string input;
  std::string constraints;
  std::string batch_file;
  std::string algo = "auto";
  std::vector<std::string> opts;
  bool header = false;
  bool stats = false;
  int repeat = 1;
  std::optional<int> topk;  ///< explicit --topk; kDefaultTopk otherwise
  std::vector<int> subset_pcts;
  static constexpr int kDefaultTopk = 10;
  std::optional<double> threshold;
  std::string instances_out;
  std::string objects_out;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      args->input = v;
    } else if (flag == "--constraints") {
      const char* v = next();
      if (v == nullptr) return false;
      args->constraints = v;
    } else if (flag == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      args->batch_file = v;
    } else if (flag == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--opt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opts.push_back(v);
    } else if (flag == "--header") {
      args->header = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--repeat") {
      const char* v = next();
      if (v == nullptr) return false;
      args->repeat = std::atoi(v);
      if (args->repeat < 1) return false;
    } else if (flag == "--subset") {
      const char* v = next();
      if (v == nullptr) return false;
      // Comma-separated percentages, '%' suffix optional: "20,40%,100".
      std::string token;
      const std::string spec = v;
      for (size_t p = 0; p <= spec.size(); ++p) {
        if (p == spec.size() || spec[p] == ',') {
          if (!token.empty() && token.back() == '%') token.pop_back();
          char* end = nullptr;
          const long pct = std::strtol(token.c_str(), &end, 10);
          if (token.empty() || end != token.c_str() + token.size() ||
              pct < 1 || pct > 100) {
            std::fprintf(stderr, "bad --subset percentage '%s'\n",
                         token.c_str());
            return false;
          }
          args->subset_pcts.push_back(static_cast<int>(pct));
          token.clear();
        } else {
          token += spec[p];
        }
      }
    } else if (flag == "--topk") {
      const char* v = next();
      if (v == nullptr) return false;
      args->topk = std::atoi(v);
    } else if (flag == "--threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threshold = std::atof(v);
    } else if (flag == "--instances") {
      const char* v = next();
      if (v == nullptr) return false;
      args->instances_out = v;
    } else if (flag == "--objects") {
      const char* v = next();
      if (v == nullptr) return false;
      args->objects_out = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  // Solver names are case-insensitive everywhere (registry and engine);
  // normalize once so the "list"/"auto" handling agrees.
  args->algo = SolverRegistry::Normalize(args->algo);
  if (args->algo == "list") return true;  // no input needed
  return !args->input.empty() &&
         (!args->constraints.empty() || !args->batch_file.empty());
}

// --algo list: one line per registered solver, straight from the registry.
int ListSolvers() {
  std::printf("registered solvers:\n");
  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    if (!solver.ok()) continue;
    std::string caps;
    const uint32_t c = (*solver)->capabilities();
    if (c & kCapRequiresWeightRatios) caps += " [wr-only]";
    if (c & kCapRequires2d) caps += " [2d-only]";
    if (c & kCapRequiresSingleInstanceObjects) caps += " [single-instance]";
    if (c & kCapQuadraticTime) caps += " [quadratic]";
    if (c & kCapExponentialTime) caps += " [exponential]";
    if (c & kCapExponentialInVertices) caps += " [vertex-exponential]";
    if (c & kCapGoalPushdown) caps += " [goal-pushdown]";
    std::printf("  %-12s %-12s %s%s\n", name.c_str(),
                (*solver)->display_name(), (*solver)->description(),
                caps.c_str());
  }
  return 0;
}

// One line per response: wall time, resolved solver, cache reuse, and the
// result size — or, for goal-pruned partial results (no full instance
// vector exists), the answer size plus the execution mode.
void PrintResponseLine(const std::string& label, const QueryResponse& resp) {
  if (resp.result->is_complete()) {
    std::printf("%scomputed ARSP in %.2f ms (%s%s); result size %d\n",
                label.c_str(), resp.stats.solve_millis, resp.solver.c_str(),
                resp.cache_hit ? ", cache hit" : "",
                CountNonZero(*resp.result));
  } else {
    std::printf(
        "%scomputed %s in %.2f ms (%s%s, goal pushdown); %zu objects\n",
        label.c_str(), resp.result->goal.ToString().c_str(),
        resp.stats.solve_millis, resp.solver.c_str(),
        resp.cache_hit ? ", cache hit" : "", resp.ranked.size());
  }
}

void PrintStatsLine(const QueryResponse& resp) {
  std::printf("%s cache_hit=%s pushdown=%s\n", resp.stats.ToString().c_str(),
              resp.cache_hit ? "true" : "false",
              resp.pushdown ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.algo == "list") return ListSolvers();

  std::vector<std::string> names;
  auto loaded = LoadUncertainDatasetCsv(args.input, args.header, &names);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", args.input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto dataset =
      std::make_shared<const UncertainDataset>(std::move(*loaded));
  std::printf("loaded %d objects / %d instances, d = %d\n",
              dataset->num_objects(), dataset->num_instances(),
              dataset->dim());

  // Collect constraint specs: --constraints and/or every non-comment line
  // of the --batch file.
  std::vector<std::string> spec_strings;
  if (!args.constraints.empty()) spec_strings.push_back(args.constraints);
  if (!args.batch_file.empty()) {
    std::ifstream in(args.batch_file);
    if (!in) {
      std::fprintf(stderr, "cannot read batch file %s\n",
                   args.batch_file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      line = Trim(line);
      if (line.empty() || line[0] == '#') continue;
      spec_strings.push_back(line);
    }
    if (spec_strings.empty()) {
      std::fprintf(stderr, "batch file %s has no constraint specs\n",
                   args.batch_file.c_str());
      return 1;
    }
  }
  if (spec_strings.size() > 1 &&
      (!args.instances_out.empty() || !args.objects_out.empty())) {
    std::fprintf(stderr,
                 "--instances/--objects write one result and need a single "
                 "constraint spec (got %zu)\n",
                 spec_strings.size());
    return 2;
  }

  SolverOptions options;
  for (const std::string& opt : args.opts) {
    const Status st = options.ParseKeyValue(opt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  // Unknown solver names and rejected options are usage errors (exit 2),
  // caught before any solving starts. "auto" resolves per request, so its
  // options can only be validated against the concrete solver later.
  if (args.algo != "auto") {
    auto solver = SolverRegistry::Create(args.algo, options);
    if (!solver.ok()) {
      std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
      return 2;
    }
  }

  // Assemble one request per constraint spec; the engine owns dataset,
  // context pool, cache, and solver resolution from here on.
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(dataset);

  // --subset: the Fig. 6 m% sweep over engine-held prefix views. Each view
  // is a zero-copy window; pooled contexts derive from the base dataset's,
  // so the whole sweep performs one full index build (reported below).
  // --topk/--threshold turn the sweep's requests into goal queries: the
  // per-prefix contexts propagate the goal, so a pushdown-capable solver
  // prunes per prefix (the mode column reports pushdown vs post-hoc).
  if (!args.subset_pcts.empty()) {
    // Reject flags the sweep cannot honor, loudly — silently dropping a
    // --repeat/--instances/--objects the user typed would misreport what
    // ran.
    if (spec_strings.size() != 1 || !args.instances_out.empty() ||
        !args.objects_out.empty() || args.repeat != 1) {
      std::fprintf(stderr,
                   "--subset needs exactly one constraint spec and is "
                   "incompatible with --repeat/--instances/--objects (it "
                   "prints a per-prefix stats table instead)\n");
      return 2;
    }
    auto constraints = ParseConstraintSpec(spec_strings[0], dataset->dim());
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return 2;
    }
    const bool derived_goal = args.topk.has_value() ||
                              args.threshold.has_value();
    std::printf("\nsubset sweep (%s, algo %s):\n", spec_strings[0].c_str(),
                args.algo.c_str());
    std::printf("  %5s %9s %10s %-12s %9s %9s %7s %-9s\n", "m%", "objects",
                "instances", "solver", "setup_ms", "solve_ms", "size",
                "mode");
    std::vector<DatasetHandle> view_handles;
    for (int pct : args.subset_pcts) {
      const int count =
          std::max(1, dataset->num_objects() * pct / 100);
      auto view_handle = engine.AddView(handle, ViewSpec::Prefix(count));
      if (!view_handle.ok()) {
        std::fprintf(stderr, "%s\n",
                     view_handle.status().ToString().c_str());
        return 1;
      }
      view_handles.push_back(*view_handle);
      QueryRequest request;
      request.dataset = *view_handle;
      request.constraints = *constraints;
      request.solver = args.algo;
      request.options = options;
      if (args.threshold) {
        request.derived.kind = DerivedKind::kObjectsAboveThreshold;
        request.derived.threshold = *args.threshold;
      } else if (args.topk) {
        request.derived.kind = DerivedKind::kTopKObjects;
        request.derived.k = *args.topk;
      }
      auto response = engine.Solve(request);
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
      }
      const DatasetView view = engine.view(*view_handle);
      // Size: the full ARSP size when the result is complete, the ranked
      // answer size for goal-pruned partial results.
      const std::string size =
          response->result->is_complete()
              ? std::to_string(CountNonZero(*response->result))
              : std::to_string(response->ranked.size()) + "*";
      const char* mode = !derived_goal
                             ? "full"
                             : (response->pushdown ? "pushdown" : "post-hoc");
      std::printf("  %4d%% %9d %10d %-12s %9.2f %9.2f %7s %-9s\n", pct,
                  view.num_objects(), view.num_instances(),
                  response->solver.c_str(), response->stats.setup_millis,
                  response->stats.solve_millis, size.c_str(), mode);
      if (args.stats) PrintStatsLine(*response);
    }
    if (derived_goal) {
      std::printf("  (* = goal answer size; the full vector was pruned "
                  "away)\n");
    }
    // One full build on the base context + per-view delta work is the
    // data-plane invariant; the counters make it visible (and are what
    // tests/engine_view_test.cc asserts).
    ExecutionContext::IndexBuildStats total = engine.index_stats(handle);
    for (const DatasetHandle& vh : view_handles) {
      total += engine.index_stats(vh);
    }
    std::printf(
        "index work across sweep: kd_builds=%lld rtree_builds=%lld "
        "score_maps=%lld score_reuses=%lld parent_index_hits=%lld\n",
        static_cast<long long>(total.kdtree_builds),
        static_cast<long long>(total.rtree_builds),
        static_cast<long long>(total.score_maps),
        static_cast<long long>(total.score_reuses),
        static_cast<long long>(total.parent_index_hits));
    return 0;
  }
  std::vector<QueryRequest> requests;
  for (const std::string& spec : spec_strings) {
    auto constraints = ParseConstraintSpec(spec, dataset->dim());
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return 2;
    }
    QueryRequest request;
    request.dataset = handle;
    request.constraints = std::move(*constraints);
    request.solver = args.algo;
    request.options = options;
    if (args.threshold) {
      request.derived.kind = DerivedKind::kObjectsAboveThreshold;
      request.derived.threshold = *args.threshold;
    } else {
      request.derived.kind = DerivedKind::kTopKObjects;
      request.derived.k = args.topk.value_or(Args::kDefaultTopk);
    }
    // CSV outputs need the complete instance vector, which a goal-pruned
    // partial result no longer carries: force the post-hoc path.
    request.allow_pushdown =
        args.instances_out.empty() && args.objects_out.empty();
    requests.push_back(std::move(request));
  }

  // Solve — repeats re-issue the whole request list, so runs past the first
  // are served by the engine's result cache (visible via --stats).
  std::vector<StatusOr<QueryResponse>> outcomes;
  for (int round = 0; round < args.repeat; ++round) {
    if (args.repeat > 1) std::printf("-- run %d/%d\n", round + 1, args.repeat);
    outcomes = engine.SolveBatch(requests);  // size-1 batches run serially
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const std::string label =
          requests.size() > 1 ? "[" + spec_strings[i] + "] " : "";
      if (!outcomes[i].ok()) {
        std::fprintf(stderr, "%s%s\n", label.c_str(),
                     outcomes[i].status().ToString().c_str());
        return 1;
      }
      PrintResponseLine(label, *outcomes[i]);
      if (args.stats) PrintStatsLine(*outcomes[i]);
    }
  }

  // Report the derived rankings of the final round.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const QueryResponse& resp = *outcomes[i];
    if (requests.size() > 1) {
      std::printf("\n[%s]", spec_strings[i].c_str());
    }
    // Report which execution strategy answered the derived query — goal
    // pushdown (bound-based pruning in the solver) or the post-hoc
    // fallback (full solve, then slicing).
    const char* mode = resp.pushdown ? "goal pushdown" : "post-hoc";
    if (args.threshold) {
      std::printf("\nobjects with Pr_rsky >= %g (%zu, via %s):\n",
                  *args.threshold, resp.ranked.size(), mode);
    } else {
      std::printf("\ntop-%d objects by Pr_rsky (via %s):\n",
                  args.topk.value_or(Args::kDefaultTopk), mode);
    }
    for (const auto& [object, prob] : resp.ranked) {
      std::printf("  %-20s %.4f\n", names[static_cast<size_t>(object)].c_str(),
                  prob);
    }
  }

  const ArspResult& result = *outcomes[0]->result;
  if (!args.instances_out.empty()) {
    const Status st = WriteTextFile(
        args.instances_out, FormatArspResultCsv(result, *dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-instance results to %s\n",
                args.instances_out.c_str());
  }
  if (!args.objects_out.empty()) {
    const Status st = WriteTextFile(
        args.objects_out, FormatObjectResultCsv(result, *dataset, &names));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-object results to %s\n", args.objects_out.c_str());
  }
  return 0;
}
