// Copyright 2026 The ARSP Authors.
//
// arspd — the long-lived ARSP query daemon. Holds one ArspEngine behind the
// src/net wire protocol so that dataset load, index build, SV(·) mapping,
// and the result cache are paid once and amortized across every client
// connection (the service frontend of ROADMAP.md; arsp_cli --connect is the
// thin client).
//
// Usage:
//   arspd [--host 127.0.0.1] [--port 7439] [--max-connections N]
//         [--cache N] [--contexts N] [--threads N] [--query-threads N]
//         [--load name=csv:/path/to/file.csv[:header]]
//         [--load name=gen:iip:n=500,seed=1]           (repeatable)
//         [--shards host:port[,host:port...]] [--replication N]
//         [--client-qps F] [--client-burst F] [--max-pending N]
//
// --shards turns the daemon into a *coordinator*: instead of an embedded
// engine it serves a cluster::Coordinator over RemoteShard connections to
// the listed arspd peers (same wire protocol on both tiers — clients cannot
// tell a coordinator from a plain daemon). --replication controls how many
// shards hold each dataset (0 = all). The admission flags install an
// AdmissionController in front of QUERY in either mode; over-budget clients
// get the typed RETRY_LATER reply instead of queueing.
//
// The daemon prints "arspd listening on HOST:PORT" once ready (scripts wait
// for it), serves until SIGINT/SIGTERM or a SHUTDOWN message, then drains
// live connections and exits 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/admission.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/remote_shard.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/metrics_http.h"
#include "tools/cli_args.h"

namespace {

using namespace arsp;

// Signal handlers may only touch lock-free state; the main loop polls this
// flag and performs the actual (lock-taking) drain.
volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arspd [--host ADDR] [--port P] [--max-connections N]\n"
      "             [--cache N] [--contexts N] [--threads N]\n"
      "             [--query-threads N]   (intra-query workers: 0 = auto,\n"
      "                                    1 = serial, N >= 2 = N per query;\n"
      "                                    shares the batch pool's core\n"
      "                                    budget, never oversubscribes)\n"
      "             [--load name=csv:PATH[:header]] [--load name=gen:SPEC]\n"
      "             [--shards H:P[,H:P...]] [--replication N]\n"
      "             [--client-qps F] [--client-burst F] [--max-pending N]\n"
      "             [--metrics-port P] [--slow-query-ms N]\n"
      "defaults: --host 127.0.0.1 --port 7439; --port 0 picks an ephemeral\n"
      "port. --load preloads a dataset at startup (repeatable); gen specs\n"
      "are GenerateFromSpec syntax, e.g. gen:iip:n=500,seed=1\n"
      "--shards serves a scatter-gather coordinator over the listed arspd\n"
      "peers instead of an embedded engine (--load is engine-mode only);\n"
      "--client-qps/--client-burst/--max-pending bound admission, over-\n"
      "budget queries get a typed RETRY_LATER reply\n"
      "--metrics-port serves GET /metrics (Prometheus text) on a second\n"
      "port (0 = ephemeral, printed at startup); --slow-query-ms logs one\n"
      "line per query slower than N ms with its trace id and phase "
      "breakdown\n");
}

struct PreloadSpec {
  std::string name;
  net::LoadSource source = net::LoadSource::kCsvFile;
  std::string payload;
  bool header = false;
};

// "name=csv:PATH[:header]" or "name=gen:SPEC".
bool ParsePreload(const std::string& arg, PreloadSpec* out) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  out->name = arg.substr(0, eq);
  std::string rest = arg.substr(eq + 1);
  if (rest.rfind("csv:", 0) == 0) {
    out->source = net::LoadSource::kCsvFile;
    out->payload = rest.substr(4);
    const size_t suffix = out->payload.rfind(":header");
    if (suffix != std::string::npos &&
        suffix + 7 == out->payload.size()) {
      out->header = true;
      out->payload.resize(suffix);
    }
    return !out->payload.empty();
  }
  if (rest.rfind("gen:", 0) == 0) {
    out->source = net::LoadSource::kGenerator;
    out->payload = rest.substr(4);
    return !out->payload.empty();
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions options;
  options.port = 7439;
  std::vector<PreloadSpec> preloads;
  std::vector<std::pair<std::string, int>> shard_addrs;
  cluster::CoordinatorOptions coordinator_options;
  cluster::AdmissionOptions admission;
  bool want_admission = false;
  int metrics_port = -1;  // -1 = no scrape endpoint

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--host") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      options.host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      // Strict parse: a typo'd port silently becoming 0 would bind an
      // ephemeral port and strand every client configured for the real one.
      if (!cli::internal::ParseIntStrict(v, &options.port) ||
          options.port < 0 || options.port > 65535) {
        std::fprintf(stderr, "bad --port '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--max-connections") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(v, &options.max_connections)) {
        std::fprintf(stderr, "bad --max-connections '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--cache") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      int cache = 0;
      if (!cli::internal::ParseIntStrict(v, &cache) || cache < 0) {
        std::fprintf(stderr, "bad --cache '%s'\n", v);
        return PrintUsage(), 2;
      }
      options.engine.result_cache_capacity = static_cast<size_t>(cache);
    } else if (flag == "--contexts") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      int contexts = 0;
      if (!cli::internal::ParseIntStrict(v, &contexts) || contexts < 1) {
        std::fprintf(stderr, "--contexts must be an integer >= 1\n");
        return PrintUsage(), 2;
      }
      options.engine.context_pool_capacity = static_cast<size_t>(contexts);
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(v, &options.engine.num_threads)) {
        std::fprintf(stderr, "bad --threads '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--query-threads") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(v, &options.engine.query_threads) ||
          options.engine.query_threads < 0) {
        std::fprintf(stderr, "bad --query-threads '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      std::string list = v;
      size_t begin = 0;
      while (begin <= list.size()) {
        const size_t comma = list.find(',', begin);
        const std::string token =
            list.substr(begin, comma == std::string::npos ? std::string::npos
                                                          : comma - begin);
        auto parsed = net::ParseHostPort(token);
        if (!parsed.ok()) {
          std::fprintf(stderr, "bad --shards entry '%s': %s\n", token.c_str(),
                       parsed.status().ToString().c_str());
          return PrintUsage(), 2;
        }
        shard_addrs.push_back(std::move(*parsed));
        if (comma == std::string::npos) break;
        begin = comma + 1;
      }
    } else if (flag == "--replication") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(
              v, &coordinator_options.plan.replication) ||
          coordinator_options.plan.replication < 0) {
        std::fprintf(stderr, "bad --replication '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--client-qps") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseDoubleStrict(v, &admission.client_qps) ||
          admission.client_qps < 0) {
        std::fprintf(stderr, "bad --client-qps '%s'\n", v);
        return PrintUsage(), 2;
      }
      want_admission = true;
    } else if (flag == "--client-burst") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseDoubleStrict(v, &admission.client_burst) ||
          admission.client_burst < 1) {
        std::fprintf(stderr, "bad --client-burst '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--max-pending") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(v, &admission.max_pending) ||
          admission.max_pending < 0) {
        std::fprintf(stderr, "bad --max-pending '%s'\n", v);
        return PrintUsage(), 2;
      }
      want_admission = true;
    } else if (flag == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(v, &metrics_port) ||
          metrics_port < 0 || metrics_port > 65535) {
        std::fprintf(stderr, "bad --metrics-port '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--slow-query-ms") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      if (!cli::internal::ParseIntStrict(v, &options.slow_query_ms) ||
          options.slow_query_ms < 0) {
        std::fprintf(stderr, "bad --slow-query-ms '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--load") {
      const char* v = next();
      if (v == nullptr) return PrintUsage(), 2;
      PreloadSpec spec;
      if (!ParsePreload(v, &spec)) {
        std::fprintf(stderr, "bad --load '%s'\n", v);
        return PrintUsage(), 2;
      }
      preloads.push_back(std::move(spec));
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return PrintUsage(), 2;
    }
  }

  if (!shard_addrs.empty()) {
    if (!preloads.empty()) {
      std::fprintf(stderr,
                   "arspd: --load is engine-mode only; load datasets through "
                   "the coordinator's wire interface instead\n");
      return 2;
    }
    std::vector<std::shared_ptr<net::ServiceBackend>> shards;
    std::vector<std::string> shard_names;
    shards.reserve(shard_addrs.size());
    for (const auto& [shard_host, shard_port] : shard_addrs) {
      shards.push_back(
          std::make_shared<cluster::RemoteShard>(shard_host, shard_port));
      shard_names.push_back(shard_host + ":" + std::to_string(shard_port));
    }
    options.backend = std::make_shared<cluster::Coordinator>(
        std::move(shards), std::move(shard_names), coordinator_options);
  }
  if (want_admission) {
    options.query_gate =
        std::make_shared<cluster::AdmissionController>(admission);
  }

  net::ArspServer server(options);

  // Handlers go in before the (possibly slow) preloads: a supervisor's
  // SIGTERM during a long CSV parse must still reach the clean-drain path,
  // and the handler only sets a flag, so installing it this early is safe.
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "arspd: %s\n", started.ToString().c_str());
    return 1;
  }

  // Preloads go through a loopback connection so they take the exact wire
  // path a client load does (registry names, fingerprinting, validation).
  // The connection targets the bound address — a daemon bound to a
  // specific interface does not listen on 127.0.0.1 (wildcard binds do).
  if (!preloads.empty()) {
    const std::string preload_host =
        options.host == "0.0.0.0" ? "127.0.0.1" : options.host;
    auto client = net::ArspClient::Connect(preload_host, server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "arspd: preload connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    for (const PreloadSpec& spec : preloads) {
      net::LoadDatasetRequest request;
      request.name = spec.name;
      request.source = spec.source;
      request.payload = spec.payload;
      request.header = spec.header;
      auto loaded = client->LoadDataset(request);
      if (!loaded.ok()) {
        std::fprintf(stderr, "arspd: preload '%s' failed: %s\n",
                     spec.name.c_str(),
                     loaded.status().ToString().c_str());
        server.Shutdown();
        server.Wait();
        return 1;
      }
      std::printf("arspd preloaded %s: %d objects / %d instances, d=%d\n",
                  loaded->name.c_str(), loaded->num_objects,
                  loaded->num_instances, loaded->dim);
    }
  }

  if (!shard_addrs.empty()) {
    std::printf("arspd coordinating %zu shards (replication %d)\n",
                shard_addrs.size(), coordinator_options.plan.replication);
  }
  // The scrape endpoint binds the same host stance as the wire port.
  obs::MetricsHttpServer metrics_server;
  if (metrics_port >= 0) {
    const Status metrics_started =
        metrics_server.Start(options.host, metrics_port);
    if (!metrics_started.ok()) {
      std::fprintf(stderr, "arspd: %s\n",
                   metrics_started.ToString().c_str());
      server.Shutdown();
      server.Wait();
      return 1;
    }
    std::printf("arspd metrics on %s:%d\n", options.host.c_str(),
                metrics_server.port());
  }
  std::printf("arspd listening on %s:%d\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  // Serve until a signal or a wire SHUTDOWN. The 50ms poll is the price of
  // keeping the signal handler async-safe (it only sets a flag).
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("arspd draining (%lld requests served)\n",
              static_cast<long long>(server.requests_served()));
  server.Shutdown();
  server.Wait();
  std::printf("arspd stopped\n");
  return 0;
}
