// Copyright 2026 The ARSP Authors.
//
// arsp_pack — build a columnar .arsp snapshot from a CSV dataset or a
// generator spec. The snapshot holds the dataset's columns, its bounds,
// both spatial indexes as flat arenas, optional pre-mapped scores, and
// object names, so arsp_cli / arspd can mmap it and serve queries with no
// parsing and no index build (see src/io/snapshot.h).
//
// Usage:
//   arsp_pack --input data.csv [--header] --output data.arsp
//   arsp_pack --generate "iip:n=1000000,m=10000,d=3" --output big.arsp
//            [--leaf-size N]     (kd-tree leaf capacity, default 16)
//            [--fanout N]        (R-tree max entries, default 16)
//            [--scores SPEC]     (pre-map scores for one constraint spec,
//                                 "wr:l1,h1[,...]" or "rank:c"; queries
//                                 whose region matches mmap their scores)
//
// Packing is the expensive half of the out-of-core split: it pays the CSV
// parse / generation plus both index builds once, so every later load is a
// validation pass over the section table.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/io/csv.h"
#include "src/io/snapshot.h"
#include "src/uncertain/generators.h"

namespace {

using namespace arsp;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arsp_pack --input data.csv [--header] --output out.arsp\n"
      "       arsp_pack --generate \"iip:n=...,m=...,d=...\" --output "
      "out.arsp\n"
      "                 [--leaf-size N] [--fanout N] [--scores SPEC]\n");
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string generate;
  std::string output;
  std::string scores_spec;
  bool header = false;
  snapshot::SnapshotWriteOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input = value();
    } else if (arg == "--generate") {
      generate = value();
    } else if (arg == "--output") {
      output = value();
    } else if (arg == "--scores") {
      scores_spec = value();
    } else if (arg == "--leaf-size") {
      options.kd_leaf_size = std::atoi(value());
    } else if (arg == "--fanout") {
      options.rtree_fanout = std::atoi(value());
    } else if (arg == "--header") {
      header = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (output.empty() || (input.empty() == generate.empty())) {
    PrintUsage();
    return 2;
  }
  if (options.kd_leaf_size < 1 || options.rtree_fanout < 2) {
    std::fprintf(stderr, "--leaf-size must be >= 1, --fanout >= 2\n");
    return 2;
  }

  // Acquire the dataset: parse the CSV or run the generator.
  const auto load_start = std::chrono::steady_clock::now();
  std::vector<std::string> names;
  StatusOr<UncertainDataset> dataset = Status::Internal("unset");
  if (!input.empty()) {
    std::ifstream file(input);
    if (!file) {
      std::fprintf(stderr, "error loading %s: cannot open\n", input.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    dataset = ParseUncertainDatasetCsv(buffer.str(), header, &names);
  } else {
    dataset = GenerateFromSpec(generate, &names);
  }
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const double load_ms = MillisSince(load_start);
  std::printf("dataset: %d objects / %d instances, d = %d (%.1f ms)\n",
              dataset->num_objects(), dataset->num_instances(),
              dataset->dim(), load_ms);

  // Optional pre-mapped scores for one preference region.
  std::unique_ptr<PreferenceRegion> region;
  if (!scores_spec.empty()) {
    auto spec = ParseConstraintSpec(scores_spec, dataset->dim());
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    region = std::make_unique<PreferenceRegion>(
        spec->has_weight_ratios()
            ? PreferenceRegion::FromWeightRatios(spec->weight_ratios())
            : spec->region());
    options.scores_region = region.get();
  }
  options.object_names = std::move(names);

  const auto pack_start = std::chrono::steady_clock::now();
  const Status written = snapshot::WriteSnapshot(*dataset, output, options);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  const double pack_ms = MillisSince(pack_start);

  std::ifstream packed(output, std::ios::binary | std::ios::ate);
  const long long bytes = packed ? static_cast<long long>(packed.tellg()) : 0;
  const std::string scores_note =
      scores_spec.empty() ? "" : ", scores " + scores_spec;
  std::printf(
      "packed %s: %lld bytes (kd leaf %d, rt fanout %d%s) in %.1f ms\n",
      output.c_str(), bytes, options.kd_leaf_size, options.rtree_fanout,
      scores_note.c_str(), pack_ms);
  return 0;
}
