// Copyright 2026 The ARSP Authors.
//
// arsp_cli argument parsing, extracted so tests can cover the exit-code /
// usage hygiene (unknown flags, missing values, conflicting modes) without
// spawning the binary. ParseCliArgs never prints: it fills `error` and the
// caller (main) routes that to stderr + usage + a non-zero exit.

#ifndef ARSP_TOOLS_CLI_ARGS_H_
#define ARSP_TOOLS_CLI_ARGS_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "src/core/solver.h"
#include "src/net/client.h"

namespace arsp {
namespace cli {

struct CliArgs {
  std::string input;
  std::string constraints;
  std::string batch_file;
  std::string algo = "auto";
  std::vector<std::string> opts;
  bool header = false;
  bool stats = false;
  int repeat = 1;
  /// --threads: intra-query workers per solve (QueryRequest::parallelism).
  /// 0 = engine policy (parallelize large contexts), 1 = force serial,
  /// N >= 2 = request N workers. Results are bit-identical either way.
  int threads = 0;
  std::optional<int> topk;  ///< explicit --topk; kDefaultTopk otherwise
  std::vector<int> subset_pcts;
  static constexpr int kDefaultTopk = 10;
  std::optional<double> threshold;
  std::string instances_out;
  std::string objects_out;
  // Remote mode (--connect host:port): every query runs against an arspd
  // instead of an in-process engine.
  bool remote = false;
  std::string host;
  int port = 0;
  /// Dataset name to register on the daemon; defaults to the --input path.
  std::string remote_name;
  bool ping = false;      ///< --ping: liveness probe, needs --connect
  bool shutdown = false;  ///< --shutdown: drain the daemon, needs --connect
  /// --trace: capture a per-query span tree and print it after results.
  /// Local mode attaches an obs::Trace to each solve; remote mode sets
  /// want_trace on the wire so the daemon (and, behind a coordinator, every
  /// shard) returns its serialized spans.
  bool trace = false;
};

namespace internal {

inline bool ParseIntStrict(const std::string& text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

inline bool ParseDoubleStrict(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace internal

/// Parses argv into `args`. Returns false with a one-line `error` on any
/// malformed flag, missing value, or conflicting mode combination — the
/// caller prints the error plus usage and exits 2. Flags are validated as
/// far as possible without touching the filesystem (file existence stays a
/// runtime error, exit 1).
inline bool ParseCliArgs(int argc, char** argv, CliArgs* args,
                         std::string* error) {
  error->clear();
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        *error = "flag " + flag + " needs a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      args->input = v;
    } else if (flag == "--constraints") {
      const char* v = next();
      if (v == nullptr) return false;
      args->constraints = v;
    } else if (flag == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      args->batch_file = v;
    } else if (flag == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--opt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opts.push_back(v);
    } else if (flag == "--header") {
      args->header = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--trace") {
      args->trace = true;
    } else if (flag == "--ping") {
      args->ping = true;
    } else if (flag == "--shutdown") {
      args->shutdown = true;
    } else if (flag == "--repeat") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!internal::ParseIntStrict(v, &args->repeat) || args->repeat < 1) {
        *error = std::string("--repeat needs an integer >= 1 (got '") + v +
                 "')";
        return false;
      }
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!internal::ParseIntStrict(v, &args->threads) ||
          args->threads < 0) {
        *error = std::string("--threads needs an integer >= 0 (got '") + v +
                 "')";
        return false;
      }
    } else if (flag == "--subset") {
      const char* v = next();
      if (v == nullptr) return false;
      // Comma-separated percentages, '%' suffix optional: "20,40%,100".
      std::string token;
      const std::string spec = v;
      for (size_t p = 0; p <= spec.size(); ++p) {
        if (p == spec.size() || spec[p] == ',') {
          if (!token.empty() && token.back() == '%') token.pop_back();
          int pct = 0;
          if (!internal::ParseIntStrict(token, &pct) || pct < 1 ||
              pct > 100) {
            *error = "bad --subset percentage '" + token + "'";
            return false;
          }
          args->subset_pcts.push_back(pct);
          token.clear();
        } else {
          token += spec[p];
        }
      }
    } else if (flag == "--topk") {
      const char* v = next();
      if (v == nullptr) return false;
      int k = 0;
      if (!internal::ParseIntStrict(v, &k)) {
        *error = std::string("--topk needs an integer (got '") + v + "')";
        return false;
      }
      args->topk = k;
    } else if (flag == "--threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      double p = 0.0;
      if (!internal::ParseDoubleStrict(v, &p)) {
        *error = std::string("--threshold needs a number (got '") + v + "')";
        return false;
      }
      args->threshold = p;
    } else if (flag == "--instances") {
      const char* v = next();
      if (v == nullptr) return false;
      args->instances_out = v;
    } else if (flag == "--objects") {
      const char* v = next();
      if (v == nullptr) return false;
      args->objects_out = v;
    } else if (flag == "--connect") {
      const char* v = next();
      if (v == nullptr) return false;
      auto host_port = net::ParseHostPort(v);
      if (!host_port.ok()) {
        *error = host_port.status().message();
        return false;
      }
      args->remote = true;
      args->host = host_port->first;
      args->port = host_port->second;
    } else if (flag == "--name") {
      const char* v = next();
      if (v == nullptr) return false;
      args->remote_name = v;
    } else {
      *error = "unknown flag '" + flag + "'";
      return false;
    }
  }

  // Solver names are case-insensitive everywhere (registry and engine);
  // normalize once so the "list"/"auto" handling agrees.
  args->algo = SolverRegistry::Normalize(args->algo);
  if (args->algo == "list") return true;  // no input needed

  // Mode conflicts — caught here so they exit 2 with usage, never half-run.
  if (args->ping && args->shutdown) {
    *error = "--ping and --shutdown are mutually exclusive";
    return false;
  }
  if ((args->ping || args->shutdown) && !args->remote) {
    *error = std::string(args->ping ? "--ping" : "--shutdown") +
             " needs --connect host:port";
    return false;
  }
  if (args->ping || args->shutdown) return true;  // no input needed

  if (!args->remote && !args->remote_name.empty()) {
    *error = "--name only applies with --connect (remote dataset name)";
    return false;
  }
  if (args->input.empty()) {
    // Remote mode can query a dataset the daemon already holds (arspd
    // --load preloads, or an earlier client's registration) by name alone.
    if (!(args->remote && !args->remote_name.empty())) {
      *error = "--input is required (or --connect with --name NAME to query "
               "a dataset already loaded on the daemon)";
      return false;
    }
    if (!args->instances_out.empty() || !args->objects_out.empty()) {
      *error = "--instances/--objects need --input (result CSVs are "
               "formatted against the local copy of the dataset)";
      return false;
    }
  }
  if (args->constraints.empty() && args->batch_file.empty()) {
    *error = "one of --constraints or --batch is required";
    return false;
  }
  if (!args->subset_pcts.empty()) {
    // The sweep prints a per-prefix stats table; flags it cannot honor are
    // rejected loudly — silently dropping a --repeat/--batch/--instances
    // the user typed would misreport what ran.
    if (!args->batch_file.empty() || args->constraints.empty()) {
      *error = "--subset needs exactly one --constraints spec (no --batch)";
      return false;
    }
    if (!args->instances_out.empty() || !args->objects_out.empty() ||
        args->repeat != 1) {
      *error = "--subset is incompatible with --repeat/--instances/--objects "
               "(it prints a per-prefix stats table instead)";
      return false;
    }
  }
  return true;
}

}  // namespace cli
}  // namespace arsp

#endif  // ARSP_TOOLS_CLI_ARGS_H_
