// Copyright 2026 The ARSP Authors.
//
// Continuous uncertainty (the paper's §VII future-work direction): sensor
// stations report (latency, error-rate) estimates with Gaussian measurement
// noise instead of discrete samples. The example estimates each station's
// rskyline probability by seeded Monte-Carlo discretization and shows the
// standard-error knob that tells you when to stop adding samples.
//
//   $ ./example_sensor_fusion

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/prefs/constraint_generators.h"
#include "src/uncertain/continuous.h"

int main() {
  using namespace arsp;

  // Stations: mean performance plus per-station measurement noise. Lower is
  // better for both latency (ms) and error rate (%).
  ContinuousUncertainDataset stations(/*dim=*/2);
  Rng rng(321);
  const int kStations = 30;
  for (int s = 0; s < kStations; ++s) {
    const double latency = rng.Uniform(5.0, 80.0);
    const double error_rate = rng.Uniform(0.1, 4.0);
    if (s % 3 == 0) {
      // Some stations report hard intervals (uniform boxes)...
      stations.AddUniformBox(Point{latency, error_rate},
                             Point{latency * 0.2, error_rate * 0.3});
    } else {
      // ...others Gaussian noise; a few are flaky (may be offline).
      stations.AddGaussian(Point{latency, error_rate},
                           Point{latency * 0.15, error_rate * 0.25},
                           s % 5 == 0 ? 0.85 : 1.0);
    }
  }

  // Latency matters at least as much as error rate: ω_err <= ω_lat.
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(2, 1));
  if (!region.ok()) return 1;

  std::printf("%-10s %-12s %-12s\n", "samples", "max stderr",
              "top station / Pr");
  int best = -1;
  std::vector<double> probs;
  for (int samples : {8, 32, 128, 512}) {
    double max_stderr = 0.0;
    probs = EstimateContinuousRskyline(stations, *region, samples,
                                       /*num_trials=*/5, /*seed=*/77,
                                       &max_stderr);
    best = 0;
    for (int s = 1; s < kStations; ++s) {
      if (probs[static_cast<size_t>(s)] > probs[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    std::printf("%-10d %-12.4f station-%02d / %.3f\n", samples, max_stderr,
                best + 1, probs[static_cast<size_t>(best)]);
  }

  std::printf("\nfinal ranking (512 samples/station):\n");
  std::vector<int> order(static_cast<size_t>(kStations));
  for (int s = 0; s < kStations; ++s) order[static_cast<size_t>(s)] = s;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return probs[static_cast<size_t>(a)] > probs[static_cast<size_t>(b)];
  });
  for (int rank = 0; rank < 8; ++rank) {
    const int s = order[static_cast<size_t>(rank)];
    std::printf("  %d. station-%02d  Pr_rsky ~ %.3f\n", rank + 1, s + 1,
                probs[static_cast<size_t>(s)]);
  }
  return 0;
}
