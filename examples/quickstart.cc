// Copyright 2026 The ARSP Authors.
//
// Quickstart: build a small uncertain dataset, describe the user's
// preferences as weight-ratio constraints, and query it through ArspEngine —
// the session-level API that owns contexts, the result cache, and solver
// selection. The whole engine round trip is:
//
//   ArspEngine engine;
//   DatasetHandle data = engine.AddDataset(std::move(dataset));
//   QueryRequest request;
//   request.dataset = data;
//   request.constraints = ConstraintSpec::WeightRatios(wr);
//   request.solver = "auto";                     // or any registry name
//   request.derived.kind = DerivedKind::kTopKObjects;
//   StatusOr<QueryResponse> response = engine.Solve(request);
//
//   $ ./example_quickstart

#include <cstdio>

#include "src/core/engine.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/uncertain_dataset.h"

int main() {
  using namespace arsp;

  // An uncertain dataset: each object is a discrete distribution over
  // instances (here: the Fig.-1-style example from the paper, 4 objects,
  // 10 instances; lower attribute values are better).
  UncertainDatasetBuilder builder(/*dim=*/2);
  builder.AddObject({Point{2.0, 10.0}, Point{14.0, 14.0}}, {0.5, 0.5});
  builder.AddObject({Point{3.0, 3.0}, Point{8.0, 11.0}, Point{9.0, 12.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{6.0, 5.0}, Point{7.0, 6.0}, Point{10.0, 9.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{12.0, 1.0}, Point{13.0, 4.0}}, {0.5, 0.5});
  auto dataset = builder.Build();
  if (!dataset.ok()) {
    std::fprintf(stderr, "invalid dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // The user cannot pin exact weights, only that neither attribute matters
  // more than twice as much as the other: 0.5 <= ω1/ω2 <= 2.
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();

  // The engine owns the dataset, pools preprocessing contexts, caches
  // results, and resolves "auto" to a concrete solver from capability
  // flags and data shape (swap in "kdtt+", "bnb", "loop", ... explicitly
  // without touching anything else).
  ArspEngine engine;
  const DatasetHandle data = engine.AddDataset(std::move(*dataset));

  QueryRequest request;
  request.dataset = data;
  request.constraints = ConstraintSpec::WeightRatios(wr);
  request.solver = "auto";
  request.derived.kind = DerivedKind::kTopKObjects;
  request.derived.k = -1;  // rank every object

  auto response = engine.Solve(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  const ArspResult& result = *response->result;
  std::printf("solved with %s in %.2f ms\n", response->solver.c_str(),
              response->stats.solve_millis);

  const auto dataset_view = engine.dataset(data);
  std::printf("\nper-instance rskyline probabilities:\n");
  for (int i = 0; i < dataset_view->num_instances(); ++i) {
    const Instance inst = dataset_view->instance(i);
    std::printf("  T%d %-12s p=%.3f  Pr_rsky=%.4f\n", inst.object_id + 1,
                inst.point.ToString().c_str(), inst.prob,
                result.instance_probs[static_cast<size_t>(inst.instance_id)]);
  }

  std::printf("\nobjects ranked by rskyline probability:\n");
  for (const auto& [object, prob] : response->ranked) {
    std::printf("  T%d  Pr_rsky=%.4f\n", object + 1, prob);
  }
  std::printf("\nARSP size (instances with non-zero probability): %d of %d\n",
              CountNonZero(result), dataset_view->num_instances());

  // Re-issuing the same request hits the engine's result cache: no solver
  // runs, the shared ArspResult is returned directly.
  auto again = engine.Solve(request);
  if (again.ok()) {
    std::printf("\nsecond identical query: cache_hit=%s\n",
                again->cache_hit ? "true" : "false");
  }
  return 0;
}
