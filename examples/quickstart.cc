// Copyright 2026 The ARSP Authors.
//
// Quickstart: build a small uncertain dataset, describe the user's
// preferences as linear constraints on scoring weights, and compute the
// rskyline probability of every instance and object.
//
//   $ ./example_quickstart

#include <cstdio>

#include "src/core/solver.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/uncertain_dataset.h"

int main() {
  using namespace arsp;

  // An uncertain dataset: each object is a discrete distribution over
  // instances (here: the Fig.-1-style example from the paper, 4 objects,
  // 10 instances; lower attribute values are better).
  UncertainDatasetBuilder builder(/*dim=*/2);
  builder.AddObject({Point{2.0, 10.0}, Point{14.0, 14.0}}, {0.5, 0.5});
  builder.AddObject({Point{3.0, 3.0}, Point{8.0, 11.0}, Point{9.0, 12.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{6.0, 5.0}, Point{7.0, 6.0}, Point{10.0, 9.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{12.0, 1.0}, Point{13.0, 4.0}}, {0.5, 0.5});
  auto dataset = builder.Build();
  if (!dataset.ok()) {
    std::fprintf(stderr, "invalid dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // The user cannot pin exact weights, only that neither attribute matters
  // more than twice as much as the other: 0.5 <= ω1/ω2 <= 2.
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();

  // An ExecutionContext owns the per-query preprocessing; any registered
  // solver can run against it ("kdtt+" is the paper's default — swap in
  // "bnb", "loop", "dual", ... without touching anything else).
  ExecutionContext context(*dataset, wr);
  std::printf("preference region has %d vertices\n",
              context.region().num_vertices());
  auto solver = SolverRegistry::Create("kdtt+");
  if (!solver.ok()) {
    std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
    return 1;
  }
  auto solved = (*solver)->Solve(context);
  if (!solved.ok()) {
    std::fprintf(stderr, "%s\n", solved.status().ToString().c_str());
    return 1;
  }
  const ArspResult& result = *solved;

  std::printf("\nper-instance rskyline probabilities:\n");
  for (const Instance& inst : dataset->instances()) {
    std::printf("  T%d %-12s p=%.3f  Pr_rsky=%.4f\n", inst.object_id + 1,
                inst.point.ToString().c_str(), inst.prob,
                result.instance_probs[static_cast<size_t>(inst.instance_id)]);
  }

  std::printf("\nobjects ranked by rskyline probability:\n");
  for (const auto& [object, prob] : TopKObjects(result, *dataset, -1)) {
    std::printf("  T%d  Pr_rsky=%.4f\n", object + 1, prob);
  }
  std::printf("\nARSP size (instances with non-zero probability): %d of %d\n",
              CountNonZero(result), dataset->num_instances());
  return 0;
}
