// Copyright 2026 The ARSP Authors.
//
// Reproduction of the paper's effectiveness study (§V-B, Tables I and II)
// on the simulated NBA-like dataset: players are uncertain objects over
// per-game stat lines; F ranks rebounds >= assists >= points.
//
// Prints Table-I style output (top players by rskyline probability, with
// aggregated-rskyline membership marked "*") and Table-II style output
// (top players by plain skyline probability), plus the paper's headline
// observations computed from the data.
//
//   $ ./example_nba_analysis

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/certain_rskyline.h"
#include "src/core/kdtt_algorithm.h"
#include "src/core/skyline_probability.h"
#include "src/prefs/constraint_generators.h"
#include "src/uncertain/generators.h"

int main() {
  using namespace arsp;

  std::vector<std::string> names;
  const UncertainDataset nba =
      GenerateNbaLike(/*num_players=*/250, /*dim=*/3, /*seed=*/2021, &names);

  // F = {ω1·Rebound + ω2·Assist + ω3·Point | ω1 >= ω2 >= ω3}.
  const auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(3, 2));
  if (!region.ok()) return 1;

  const ArspResult rsky = ComputeArspKdtt(nba, *region);
  const ArspResult sky = ComputeAllSkylineProbabilities(nba);

  const std::vector<Point> averages = AggregateByMean(nba);
  const std::vector<int> aggregated = ComputeRskyline(averages, *region);

  std::printf("Table I style: top-14 players by rskyline probability\n");
  std::printf("(* = member of the aggregated rskyline)\n\n");
  for (const auto& [player, prob] : TopKObjects(rsky, nba, 14)) {
    const bool agg = std::binary_search(aggregated.begin(), aggregated.end(),
                                        player);
    std::printf("  %s %-12s Pr_rsky = %.3f\n", agg ? "*" : " ",
                names[static_cast<size_t>(player)].c_str(), prob);
  }

  std::printf("\nTable II style: top-14 players by skyline probability\n\n");
  for (const auto& [player, prob] : TopKObjects(sky, nba, 14)) {
    std::printf("    %-12s Pr_sky  = %.3f\n",
                names[static_cast<size_t>(player)].c_str(), prob);
  }

  // Observation 1 (§V-B): rskyline probability <= skyline probability,
  // because F strengthens every instance's dominance ability.
  const std::vector<double> rsky_obj = ObjectProbabilities(rsky, nba);
  const std::vector<double> sky_obj = ObjectProbabilities(sky, nba);
  int violations = 0;
  for (int j = 0; j < nba.num_objects(); ++j) {
    if (rsky_obj[static_cast<size_t>(j)] >
        sky_obj[static_cast<size_t>(j)] + 1e-9) {
      ++violations;
    }
  }
  std::printf("\nPr_rsky <= Pr_sky violations: %d (expect 0)\n", violations);

  // Observation 2: high-skyline players can rank poorly under F (the
  // paper's Trae Young case). Report the largest rank drop.
  auto rank_of = [&](const std::vector<double>& probs) {
    std::vector<int> order(static_cast<size_t>(nba.num_objects()));
    for (int j = 0; j < nba.num_objects(); ++j) order[static_cast<size_t>(j)] = j;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return probs[static_cast<size_t>(a)] > probs[static_cast<size_t>(b)];
    });
    std::vector<int> rank(static_cast<size_t>(nba.num_objects()));
    for (int r = 0; r < nba.num_objects(); ++r) {
      rank[static_cast<size_t>(order[static_cast<size_t>(r)])] = r + 1;
    }
    return rank;
  };
  const std::vector<int> rsky_rank = rank_of(rsky_obj);
  const std::vector<int> sky_rank = rank_of(sky_obj);
  int worst_player = 0;
  int worst_drop = 0;
  for (int j = 0; j < nba.num_objects(); ++j) {
    const int drop = rsky_rank[static_cast<size_t>(j)] -
                     sky_rank[static_cast<size_t>(j)];
    if (sky_rank[static_cast<size_t>(j)] <= 20 && drop > worst_drop) {
      worst_drop = drop;
      worst_player = j;
    }
  }
  std::printf(
      "largest rank drop among skyline top-20: %s, skyline rank %d -> "
      "rskyline rank %d\n",
      names[static_cast<size_t>(worst_player)].c_str(),
      sky_rank[static_cast<size_t>(worst_player)],
      rsky_rank[static_cast<size_t>(worst_player)]);

  std::printf("aggregated rskyline size: %zu (uncontrollable); ARSP top-k "
              "is any size you ask for\n",
              aggregated.size());
  return 0;
}
