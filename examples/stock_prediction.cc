// Copyright 2026 The ARSP Authors.
//
// The paper's prediction-service scenario (§I): model predictions of stock
// price (P) and growth rate (GR) carry confidence values, forming an
// uncertain dataset of single-instance objects. The analyst's preference is
// a weight ratio constraint 0.5 ω_GR <= ω_P <= 2 ω_GR. This is exactly the
// regime of the §IV algorithms: the example runs the half-space-reporting
// DUAL algorithm and the preprocessed d=2 DUAL-MS structure and shows they
// agree, then reuses the same preprocessing for a second analyst with a
// different ratio range.
//
//   $ ./example_stock_prediction

#include <cstdio>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/dual2d_ms.h"
#include "src/core/dual_algorithm.h"

int main() {
  using namespace arsp;

  // Predictions: price (lower = cheaper entry) and negated growth rate
  // (lower = stronger growth). Confidence in {0.6..0.95}.
  Rng rng(7);
  UncertainDatasetBuilder builder(/*dim=*/2);
  const int kStocks = 400;
  for (int s = 0; s < kStocks; ++s) {
    const double price = rng.Uniform(10.0, 500.0);
    const double growth = rng.Normal(0.05, 0.12) - price / 8000.0;
    const double confidence = rng.Uniform(0.6, 0.95);
    builder.AddSingleton(Point{price, -growth}, confidence);
  }
  const auto dataset = builder.Build();
  if (!dataset.ok()) return 1;

  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();

  Stopwatch sw;
  const ArspResult via_dual = ComputeArspDual(*dataset, wr);
  const double dual_ms = sw.ElapsedMillis();

  sw.Restart();
  auto index = Dual2dMs::Build(*dataset);
  const double build_ms = sw.ElapsedMillis();
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  sw.Restart();
  const ArspResult via_ms = index->Query(0.5, 2.0);
  const double query_ms = sw.ElapsedMillis();

  std::printf("DUAL (no preprocessing):   %.2f ms\n", dual_ms);
  std::printf("DUAL-MS: build %.2f ms, query %.2f ms, index %.1f MiB\n",
              build_ms, query_ms,
              static_cast<double>(index->MemoryBytes()) / (1 << 20));
  std::printf("max |difference| = %.2e\n\n", MaxAbsDiff(via_dual, via_ms));

  std::printf("top stock predictions, ratio range [0.5, 2]:\n");
  for (const auto& [object, prob] : TopKObjects(via_ms, *dataset, 8)) {
    const Instance inst = dataset->instance(dataset->object_range(object).first);
    std::printf("  stock-%03d  Pr_rsky=%.4f  price=%6.1f  growth=%+.3f\n",
                object + 1, prob, inst.point[0], -inst.point[1]);
  }

  // A second analyst weighs growth much higher; the same index answers
  // instantly (the whole point of the preprocessing).
  sw.Restart();
  const ArspResult growth_heavy = index->Query(0.1, 0.5);
  std::printf("\nsecond query [0.1, 0.5] reused the index in %.2f ms:\n",
              sw.ElapsedMillis());
  for (const auto& [object, prob] : TopKObjects(growth_heavy, *dataset, 5)) {
    const Instance inst = dataset->instance(dataset->object_range(object).first);
    std::printf("  stock-%03d  Pr_rsky=%.4f  price=%6.1f  growth=%+.3f\n",
                object + 1, prob, inst.point[0], -inst.point[1]);
  }
  return 0;
}
