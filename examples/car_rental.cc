// Copyright 2026 The ARSP Authors.
//
// The paper's e-commerce scenario (§I): probabilistic selling on a car
// rental platform. Each "probabilistic car" is an uncertain object over a
// group of real cars; the customer only states that fuel economy matters at
// least as much as horsepower. ARSP ranks probabilistic cars by the chance
// of obtaining a non-F-dominated car, and the example contrasts that with
// the traditional rskyline over per-group averages, which hides
// distribution information.
//
//   $ ./example_car_rental

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/core/certain_rskyline.h"
#include "src/core/kdtt_algorithm.h"
#include "src/prefs/constraint_generators.h"
#include "src/uncertain/generators.h"

int main() {
  using namespace arsp;

  // Build probabilistic cars: each category groups cars with varying
  // horsepower (HP) and fuel economy (MPG). Lower is better in the library,
  // so we store negated HP and MPG.
  Rng rng(2024);
  UncertainDatasetBuilder builder(/*dim=*/2);
  const int kGroups = 40;
  for (int g = 0; g < kGroups; ++g) {
    const double base_hp = rng.Uniform(90.0, 320.0);
    const double base_mpg = 52.0 - base_hp / 12.0 + rng.Normal(0.0, 4.0);
    const int cars = rng.UniformInt(2, 8);
    std::vector<Point> points;
    std::vector<double> probs;
    for (int i = 0; i < cars; ++i) {
      const double hp = base_hp * (1.0 + rng.Normal(0.0, 0.15));
      const double mpg = std::max(8.0, base_mpg + rng.Normal(0.0, 3.0));
      points.push_back(Point{-hp, -mpg});
      probs.push_back(1.0 / cars);
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  const auto dataset = builder.Build();
  if (!dataset.ok()) return 1;

  // "MPG is more important than HP": ω_HP <= ω_MPG.
  LinearConstraints constraints(2);
  constraints.Add({1.0, -1.0}, 0.0);
  const auto region = PreferenceRegion::FromLinearConstraints(constraints);
  if (!region.ok()) return 1;

  const ArspResult result = ComputeArspKdtt(*dataset, *region);

  // Traditional rskyline over aggregated (average) cars, for contrast.
  const std::vector<Point> averages = AggregateByMean(*dataset);
  const std::vector<int> aggregated = ComputeRskyline(averages, *region);

  std::printf("top probabilistic cars by rskyline probability\n");
  std::printf("(* = also in the rskyline of the aggregated dataset)\n\n");
  std::printf("%-10s %-10s %-8s %-8s %s\n", "group", "Pr_rsky", "avg HP",
              "avg MPG", "agg");
  for (const auto& [object, prob] : TopKObjects(result, *dataset, 12)) {
    const bool in_agg = std::binary_search(aggregated.begin(),
                                           aggregated.end(), object);
    std::printf("group-%02d   %-10.4f %-8.0f %-8.1f %s\n", object + 1, prob,
                -averages[static_cast<size_t>(object)][0],
                -averages[static_cast<size_t>(object)][1], in_agg ? "*" : "");
  }

  // The paper's §I observation: groups outside the aggregated rskyline can
  // still carry high rskyline probability (good cars inside a mediocre
  // group), and aggregated-rskyline groups can rank low (high variance).
  int high_prob_not_agg = 0;
  for (const auto& [object, prob] : TopKObjects(result, *dataset, 12)) {
    if (!std::binary_search(aggregated.begin(), aggregated.end(), object)) {
      ++high_prob_not_agg;
    }
  }
  std::printf(
      "\n%d of the top 12 probabilistic cars are invisible to the "
      "aggregated rskyline (%zu groups).\n",
      high_prob_not_agg, aggregated.size());
  return 0;
}
