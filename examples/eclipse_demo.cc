// Copyright 2026 The ARSP Authors.
//
// Eclipse queries on a certain dataset (§IV / §V-D, after Liu et al. [2]):
// retrieve the objects not F-dominated under weight ratio constraints.
// Shows the skyline -> eclipse funnel and compares the DUAL-S algorithm
// against the O(s²) pairwise baseline.
//
//   $ ./example_eclipse_demo

#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/certain_rskyline.h"
#include "src/eclipse/eclipse.h"

int main() {
  using namespace arsp;

  Rng rng(99);
  const int n = 1 << 14;
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back(Point{rng.Uniform01(), rng.Uniform01(), rng.Uniform01()});
  }

  const auto wr =
      WeightRatioConstraints::Create({{0.36, 2.75}, {0.36, 2.75}}).value();

  Stopwatch sw;
  const std::vector<int> skyline = ComputeSkyline(points);
  const double skyline_ms = sw.ElapsedMillis();

  sw.Restart();
  const std::vector<int> via_pairwise = ComputeEclipsePairwise(points, wr);
  const double pairwise_ms = sw.ElapsedMillis();

  sw.Restart();
  const std::vector<int> via_dual_s = ComputeEclipseDualS(points, wr);
  const double dual_s_ms = sw.ElapsedMillis();

  std::printf("n = %d points (IND, d = 3), ratio range [0.36, 2.75]\n\n", n);
  std::printf("skyline size:  %zu   (%.2f ms)\n", skyline.size(), skyline_ms);
  std::printf("eclipse size:  %zu\n\n", via_dual_s.size());
  std::printf("pairwise (QUAD-style reporting): %.2f ms\n", pairwise_ms);
  std::printf("DUAL-S (half-space probes):      %.2f ms\n", dual_s_ms);
  std::printf("results identical: %s\n\n",
              via_pairwise == via_dual_s ? "yes" : "NO (bug!)");

  std::printf("first eclipse members:\n");
  for (size_t i = 0; i < via_dual_s.size() && i < 8; ++i) {
    std::printf("  #%d %s\n", via_dual_s[i],
                points[static_cast<size_t>(via_dual_s[i])].ToString().c_str());
  }

  // Narrowing the ratio range strengthens dominance and shrinks the eclipse.
  std::printf("\neclipse size vs ratio range q:\n");
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0.84, 1.19}, {0.58, 1.73}, {0.36, 2.75}, {0.18, 5.67}}) {
    const auto q = WeightRatioConstraints::Create({{lo, hi}, {lo, hi}}).value();
    std::printf("  [%.2f, %.2f] -> %zu\n", lo, hi,
                ComputeEclipseDualS(points, q).size());
  }
  return 0;
}
