// Copyright 2026 The ARSP Authors.
//
// The shared nearest-rank percentile helper, checked against known
// distributions — including the exact index arithmetic the engine's
// latency_stats() historically used (round(q · (n − 1))), so centralizing
// did not silently change reported numbers.

#include "src/common/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace arsp {
namespace {

TEST(PercentileTest, EmptySampleIsZero) {
  EXPECT_EQ(SortedPercentile({}, 0.5), 0.0);
  std::vector<double> empty;
  const auto out = Percentiles(&empty, {0.5, 0.95});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> one = {42.0};
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(SortedPercentile(one, q), 42.0);
  }
}

TEST(PercentileTest, KnownUniformDistribution) {
  // 0..100: element at index round(q * 100) == the percentile value itself.
  std::vector<double> sorted;
  for (int i = 0; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  EXPECT_EQ(SortedPercentile(sorted, 0.0), 0.0);
  EXPECT_EQ(SortedPercentile(sorted, 0.50), 50.0);
  EXPECT_EQ(SortedPercentile(sorted, 0.95), 95.0);
  EXPECT_EQ(SortedPercentile(sorted, 0.99), 99.0);
  EXPECT_EQ(SortedPercentile(sorted, 1.0), 100.0);
}

TEST(PercentileTest, NearestRankRounding) {
  // n = 10 → index = round(q * 9): q=0.5 → 4.5+0.5 → index 5 (truncation
  // of 5.0), q=0.95 → 8.55+0.5 → index 9.
  std::vector<double> sorted;
  for (int i = 0; i < 10; ++i) sorted.push_back(static_cast<double>(i * 10));
  EXPECT_EQ(SortedPercentile(sorted, 0.5), 50.0);
  EXPECT_EQ(SortedPercentile(sorted, 0.95), 90.0);
  EXPECT_EQ(SortedPercentile(sorted, 0.05), 0.0);  // 0.45+0.5 → index 0
}

TEST(PercentileTest, QuantileClamping) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0};
  EXPECT_EQ(SortedPercentile(sorted, -0.5), 1.0);
  EXPECT_EQ(SortedPercentile(sorted, 1.5), 3.0);
}

TEST(PercentileTest, PercentilesSortsUnsortedInput) {
  // The helper must not assume pre-sorted input — the regression the
  // centralization fixes: an unsorted ring copy fed straight to the rank
  // formula produces garbage.
  std::vector<double> sample = {9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0};
  const auto out = Percentiles(&sample, {0.0, 0.5, 1.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 5.0);
  EXPECT_EQ(out[2], 9.0);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
}

}  // namespace
}  // namespace arsp
