// Copyright 2026 The ARSP Authors.
//
// Coordinator merge correctness — the cluster tentpole's acceptance bar: a
// Coordinator over N in-process EngineBackend shards must answer every
// query *bit-identically* (EXPECT_EQ on doubles, no tolerance) to a single
// EngineBackend holding the same data, for every registered solver, every
// derived-goal kind, shard counts {1, 2, 3, 7}, and adversarially skewed /
// empty scope partitions. Tie boundaries are pinned explicitly: a top-k cut
// through an exact probability tie, the count-controlled tie extension, and
// a threshold lying exactly on an object's probability — the cases where a
// merge that is "almost right" (re-ranked with drifted doubles, or sliced
// with different boundary rules) visibly diverges.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/core/solver.h"
#include "src/net/server.h"

namespace arsp {
namespace {

using cluster::Coordinator;
using cluster::CoordinatorOptions;
using net::EngineBackend;
using net::LoadDatasetRequest;
using net::LoadSource;
using net::QueryRequestWire;
using net::QueryResponseWire;
using net::ServiceBackend;
using net::WireDerivedKind;

// A multi-instance synthetic (enum refuses it: 3^18 worlds > the cap, which
// must fail identically through the coordinator) and a single-instance IIP.
struct DatasetCase {
  const char* name;
  const char* spec;
  const char* constraints;
};
constexpr DatasetCase kDatasets[] = {
    {"syn", "synthetic:m=14,cnt=3,d=3,l=0.3,seed=11", "wr:0.5,2.0,0.4,1.8"},
    {"iip", "iip:n=30,seed=5", "wr:0.5,2.0"},
};

// Objects 1 and 2 share an identical instance layout, so their rskyline
// probabilities are exactly equal doubles (the TiedDataset of
// goal_equivalence_test, shipped as CSV). Small enough for enum.
constexpr char kTiedCsv[] =
    "a,1.0,0.1,0.9\n"
    "b,0.5,0.3,0.5\nb,0.5,0.5,0.3\n"
    "c,0.5,0.3,0.5\nc,0.5,0.5,0.3\n"
    "d,0.5,0.7,0.8\nd,0.5,0.9,0.6\n";

std::unique_ptr<Coordinator> MakeCluster(int num_shards,
                                         CoordinatorOptions options = {}) {
  std::vector<std::shared_ptr<ServiceBackend>> shards;
  std::vector<std::string> names;
  for (int s = 0; s < num_shards; ++s) {
    shards.push_back(std::make_shared<EngineBackend>());
    names.push_back("shard-" + std::to_string(s));
  }
  return std::make_unique<Coordinator>(std::move(shards), std::move(names),
                                       std::move(options));
}

void LoadGenerator(ServiceBackend& backend, const std::string& name,
                   const std::string& spec) {
  LoadDatasetRequest load;
  load.name = name;
  load.source = LoadSource::kGenerator;
  load.payload = spec;
  auto response = backend.Load(load);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
}

void LoadCsv(ServiceBackend& backend, const std::string& name,
             const std::string& csv) {
  LoadDatasetRequest load;
  load.name = name;
  load.source = LoadSource::kCsvText;
  load.payload = csv;
  auto response = backend.Load(load);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
}

QueryRequestWire MakeQuery(const std::string& dataset,
                           const std::string& constraints,
                           const std::string& solver,
                           WireDerivedKind kind = WireDerivedKind::kNone) {
  QueryRequestWire request;
  request.dataset = dataset;
  request.constraint_spec = constraints;
  request.solver = solver;
  request.derived_kind = kind;
  // The sweeps compare *solve* metadata (complete, goal, size). With the
  // cache on, a daemon may legitimately serve a later goal query from an
  // earlier full result — metadata then depends on query history, not on
  // sharding, on either side. Cache behavior gets its own test below.
  request.use_cache = false;
  return request;
}

// The merged answer must be indistinguishable from the single daemon's:
// same ranked ids, names, and bit-identical probabilities, same derived
// threshold, same completeness/size, and (when shipped) the identical
// instance-probability vector.
void ExpectBitIdentical(const QueryResponseWire& reference,
                        const QueryResponseWire& merged,
                        const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(reference.solver, merged.solver);
  // Completeness is emergent, not a merge property: a pushdown-capable
  // solver may still complete an *unscoped* solve (B&B whose bounds never
  // pruned) while its scoped parts are partial by construction. The sound
  // invariant is one-directional — a merged answer may only claim complete
  // when the unsharded one does — and the complete-only metadata must agree
  // whenever both sides are in the same state.
  if (merged.complete) EXPECT_TRUE(reference.complete);
  if (reference.complete == merged.complete) {
    EXPECT_EQ(reference.goal, merged.goal);
    EXPECT_EQ(reference.result_size, merged.result_size);
  }
  EXPECT_EQ(reference.count_threshold, merged.count_threshold);
  ASSERT_EQ(reference.ranked.size(), merged.ranked.size());
  for (size_t i = 0; i < reference.ranked.size(); ++i) {
    EXPECT_EQ(reference.ranked[i].object_id, merged.ranked[i].object_id)
        << "rank " << i;
    EXPECT_EQ(reference.ranked[i].name, merged.ranked[i].name) << "rank " << i;
    EXPECT_EQ(reference.ranked[i].prob, merged.ranked[i].prob) << "rank " << i;
  }
  EXPECT_EQ(reference.instance_probs, merged.instance_probs);
}

// The goal grid each (dataset, solver) pair is swept through. The boundary
// threshold (a probability exactly on an object) is appended by the caller
// once the reference full ranking is known.
std::vector<QueryRequestWire> GoalGrid(const std::string& dataset,
                                       const std::string& constraints,
                                       const std::string& solver) {
  std::vector<QueryRequestWire> grid;
  {
    QueryRequestWire q = MakeQuery(dataset, constraints, solver);
    q.include_instances = true;
    grid.push_back(q);  // full answer, instance vector shipped
  }
  for (int k : {0, 1, 3, -1}) {  // -1 ranks everything; 0 is empty
    QueryRequestWire q = MakeQuery(dataset, constraints, solver,
                                   WireDerivedKind::kTopKObjects);
    q.k = k;
    grid.push_back(q);
  }
  {
    QueryRequestWire q = MakeQuery(dataset, constraints, solver,
                                   WireDerivedKind::kCountControlled);
    q.max_objects = 3;
    grid.push_back(q);
  }
  {
    QueryRequestWire q = MakeQuery(dataset, constraints, solver,
                                   WireDerivedKind::kObjectsAboveThreshold);
    q.threshold = 0.25;
    grid.push_back(q);
  }
  {
    // Instance-level goal: the coordinator forwards instead of merging.
    QueryRequestWire q = MakeQuery(dataset, constraints, solver,
                                   WireDerivedKind::kTopKInstances);
    q.k = 5;
    grid.push_back(q);
  }
  return grid;
}

const char* KindName(WireDerivedKind kind) {
  switch (kind) {
    case WireDerivedKind::kNone: return "full";
    case WireDerivedKind::kTopKObjects: return "topk";
    case WireDerivedKind::kTopKInstances: return "topk-inst";
    case WireDerivedKind::kObjectsAboveThreshold: return "threshold";
    case WireDerivedKind::kCountControlled: return "count";
  }
  return "?";
}

// Sweeps every registered solver over the goal grid on `dataset`,
// comparing `cluster` against the single-backend `reference`. Solvers the
// engine rejects for this dataset/constraint combination must be rejected
// identically (same status code) through the coordinator.
void SweepSolvers(ServiceBackend& reference, ServiceBackend& cluster,
                  const std::string& dataset, const std::string& constraints,
                  const std::string& label,
                  std::vector<std::string> solvers = {}) {
  if (solvers.empty()) solvers = SolverRegistry::Names();
  for (const std::string& solver : solvers) {
    SCOPED_TRACE(label + "/" + solver);
    // Probe applicability with a full ranking; inapplicable solvers must
    // fail with the same code on both sides.
    QueryRequestWire probe = MakeQuery(dataset, constraints, solver,
                                       WireDerivedKind::kTopKObjects);
    probe.k = -1;
    auto reference_probe = reference.Query(probe);
    auto cluster_probe = cluster.Query(probe);
    ASSERT_EQ(reference_probe.ok(), cluster_probe.ok())
        << "reference: " << reference_probe.status().ToString()
        << " cluster: " << cluster_probe.status().ToString();
    if (!reference_probe.ok()) {
      EXPECT_EQ(reference_probe.status().code(),
                cluster_probe.status().code());
      continue;
    }
    ExpectBitIdentical(*reference_probe, *cluster_probe, "rank-all");

    std::vector<QueryRequestWire> grid =
        GoalGrid(dataset, constraints, solver);
    // A threshold lying exactly on an object's probability — the boundary
    // tie ("probability == threshold" is included).
    if (reference_probe->ranked.size() >= 2 &&
        reference_probe->ranked[1].prob > 0.0) {
      QueryRequestWire q = MakeQuery(dataset, constraints, solver,
                                     WireDerivedKind::kObjectsAboveThreshold);
      q.threshold = reference_probe->ranked[1].prob;
      grid.push_back(q);
    }
    for (const QueryRequestWire& request : grid) {
      SCOPED_TRACE(std::string(KindName(request.derived_kind)) + " k=" +
                   std::to_string(request.k));
      auto expected = reference.Query(request);
      auto merged = cluster.Query(request);
      ASSERT_EQ(expected.ok(), merged.ok())
          << "reference: " << expected.status().ToString()
          << " cluster: " << merged.status().ToString();
      if (!expected.ok()) {
        EXPECT_EQ(expected.status().code(), merged.status().code());
        continue;
      }
      ExpectBitIdentical(*expected, *merged, "merge");
    }
  }
}

TEST(ClusterEquivalence, RegistrySweepAcrossShardCounts) {
  for (int num_shards : {1, 2, 3, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    auto coordinator = MakeCluster(num_shards);
    EngineBackend reference;
    for (const DatasetCase& dataset : kDatasets) {
      LoadGenerator(*coordinator, dataset.name, dataset.spec);
      LoadGenerator(reference, dataset.name, dataset.spec);
      SweepSolvers(reference, *coordinator, dataset.name,
                   dataset.constraints, dataset.name);
    }
  }
}

TEST(ClusterEquivalence, AdversarialPartitionsStayBitIdentical) {
  // Skewed and degenerate scope splits: all the work on one shard, empty
  // scopes, single-object scopes. The merge must not care.
  using Partition = std::vector<std::pair<int, int>>;
  const std::vector<std::function<Partition(int, int)>> partitions = {
      // Everything on the first holder, the rest idle.
      [](int m, int parts) {
        Partition p(static_cast<size_t>(parts), {m, m});
        p[0] = {0, m};
        return p;
      },
      // One object on the first holder, the rest on the last.
      [](int m, int parts) {
        Partition p(static_cast<size_t>(parts), {1, 1});
        p[0] = {0, 1};
        p[static_cast<size_t>(parts) - 1] = {1, m};
        return p;
      },
      // Maximally fragmented head: single-object scopes, tail gets the rest.
      [](int m, int parts) {
        Partition p;
        int begin = 0;
        for (int s = 0; s + 1 < parts && begin < m; ++s, ++begin) {
          p.emplace_back(begin, begin + 1);
        }
        while (static_cast<int>(p.size()) + 1 < parts) p.emplace_back(m, m);
        p.emplace_back(begin, m);
        return p;
      },
  };
  for (int num_shards : {2, 3, 7}) {
    for (size_t variant = 0; variant < partitions.size(); ++variant) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards) + " variant=" +
                   std::to_string(variant));
      CoordinatorOptions options;
      options.partition_fn = partitions[variant];
      auto coordinator = MakeCluster(num_shards, options);
      EngineBackend reference;
      const DatasetCase& dataset = kDatasets[0];
      LoadGenerator(*coordinator, dataset.name, dataset.spec);
      LoadGenerator(reference, dataset.name, dataset.spec);
      // One pushdown solver (partial per-scope answers + refinement) and
      // one goal-oblivious solver (complete per-scope answers); the full
      // registry is already swept across shard counts above.
      SweepSolvers(reference, *coordinator, dataset.name, dataset.constraints,
                   "adversarial", {"kdtt+", "loop"});
    }
  }
}

TEST(ClusterEquivalence, TieBoundariesSurviveTheMerge) {
  // The exact-tie dataset: k = 2 cuts through the tie (id order keeps the
  // lower base id), count-controlled k = 2 extends to 3, and a threshold
  // exactly equal to the tied probability includes both. Shard count 3 over
  // 4 objects guarantees the tied pair lands in different scopes.
  auto coordinator = MakeCluster(3);
  EngineBackend reference;
  LoadCsv(*coordinator, "tied", kTiedCsv);
  LoadCsv(reference, "tied", kTiedCsv);
  constexpr char kRank[] = "rank:1";

  for (const char* solver : {"kdtt+", "mwtt", "bnb", "enum", "loop"}) {
    SCOPED_TRACE(solver);
    QueryRequestWire all =
        MakeQuery("tied", kRank, solver, WireDerivedKind::kTopKObjects);
    all.k = -1;
    auto reference_all = reference.Query(all);
    if (!reference_all.ok()) continue;  // solver not applicable here
    ASSERT_GE(reference_all->ranked.size(), 3u);
    const double tied = reference_all->ranked[1].prob;
    ASSERT_EQ(tied, reference_all->ranked[2].prob);  // the exact tie
    ASSERT_GT(tied, 0.0);

    QueryRequestWire topk =
        MakeQuery("tied", kRank, solver, WireDerivedKind::kTopKObjects);
    topk.k = 2;
    auto merged_topk = coordinator->Query(topk);
    auto reference_topk = reference.Query(topk);
    ASSERT_TRUE(merged_topk.ok()) << merged_topk.status().ToString();
    ASSERT_TRUE(reference_topk.ok());
    ExpectBitIdentical(*reference_topk, *merged_topk, "topk-tie");
    ASSERT_EQ(merged_topk->ranked.size(), 2u);
    EXPECT_EQ(merged_topk->ranked[1].object_id, 1);  // id order breaks the tie

    QueryRequestWire count =
        MakeQuery("tied", kRank, solver, WireDerivedKind::kCountControlled);
    count.max_objects = 2;
    auto merged_count = coordinator->Query(count);
    auto reference_count = reference.Query(count);
    ASSERT_TRUE(merged_count.ok()) << merged_count.status().ToString();
    ASSERT_TRUE(reference_count.ok());
    ExpectBitIdentical(*reference_count, *merged_count, "count-tie");
    ASSERT_EQ(merged_count->ranked.size(), 3u);  // the tie extends the answer
    EXPECT_EQ(merged_count->count_threshold, tied);

    QueryRequestWire at = MakeQuery("tied", kRank, solver,
                                    WireDerivedKind::kObjectsAboveThreshold);
    at.threshold = tied;
    auto merged_at = coordinator->Query(at);
    auto reference_at = reference.Query(at);
    ASSERT_TRUE(merged_at.ok()) << merged_at.status().ToString();
    ASSERT_TRUE(reference_at.ok());
    ExpectBitIdentical(*reference_at, *merged_at, "threshold-tie");
    ASSERT_EQ(merged_at->ranked.size(), 3u);
    EXPECT_EQ(merged_at->ranked[1].object_id, 1);
    EXPECT_EQ(merged_at->ranked[2].object_id, 2);
  }
}

TEST(ClusterEquivalence, ViewsPartitionAcrossShards) {
  // Views registered through the coordinator land on the base's holders and
  // scatter like any dataset; ranked answers still carry base object ids.
  auto coordinator = MakeCluster(3);
  EngineBackend reference;
  const DatasetCase& dataset = kDatasets[1];
  LoadGenerator(*coordinator, dataset.name, dataset.spec);
  LoadGenerator(reference, dataset.name, dataset.spec);

  net::AddViewRequest add;
  add.base_name = dataset.name;
  add.view_name = "iip#25";
  add.spec = ViewSpec::Prefix(25);
  auto through = coordinator->AddView(add);
  ASSERT_TRUE(through.ok()) << through.status().ToString();
  EXPECT_EQ(through->num_objects, 25);
  ASSERT_TRUE(reference.AddView(add).ok());

  SweepSolvers(reference, *coordinator, "iip#25", dataset.constraints,
               "view");

  // Dropping the base through the coordinator cascades on every shard.
  net::DropRequest drop;
  drop.name = dataset.name;
  ASSERT_TRUE(coordinator->Drop(drop).ok());
  auto gone = coordinator->Query(
      MakeQuery("iip#25", dataset.constraints, "kdtt+"));
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST(ClusterEquivalence, RepeatQueryIsAClusterWideCacheHit) {
  auto coordinator = MakeCluster(3);
  const DatasetCase& dataset = kDatasets[1];
  LoadGenerator(*coordinator, dataset.name, dataset.spec);
  QueryRequestWire request =
      MakeQuery(dataset.name, dataset.constraints, "kdtt+");
  request.use_cache = true;
  auto miss = coordinator->Query(request);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->cache_hit);
  auto hit = coordinator->Query(request);
  ASSERT_TRUE(hit.ok());
  // Every per-scope sub-query hits its shard's cache; the merged flag is
  // the conjunction.
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->result_size, miss->result_size);

  // Aggregated stats see the dataset once (deduplicated across holders)
  // and sum the shard caches.
  auto stats = coordinator->Stats(net::StatsRequest{dataset.name});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->datasets.size(), 1u);
  EXPECT_EQ(stats->datasets[0].name, dataset.name);
  EXPECT_GT(stats->cache_hits, 0);
  EXPECT_TRUE(stats->has_index_stats);
}

TEST(ClusterEquivalence, UnknownNamesAndBadSpecsFailCleanly) {
  auto coordinator = MakeCluster(2);
  EXPECT_EQ(coordinator->Query(MakeQuery("nope", "wr:0.5,2.0", "kdtt+"))
                .status()
                .code(),
            StatusCode::kNotFound);
  const DatasetCase& dataset = kDatasets[1];
  LoadGenerator(*coordinator, dataset.name, dataset.spec);
  EXPECT_EQ(coordinator->Query(MakeQuery(dataset.name, "wr:banana", "kdtt+"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      coordinator->Query(MakeQuery(dataset.name, dataset.constraints,
                                   "no-such-solver"))
          .ok());
}

}  // namespace
}  // namespace arsp
