// Copyright 2026 The ARSP Authors.

#include "src/prefs/weight_ratio.h"

#include <gtest/gtest.h>

#include "src/prefs/linear_constraints.h"

namespace arsp {
namespace {

TEST(WeightRatioTest, CreateValidates) {
  EXPECT_FALSE(WeightRatioConstraints::Create({}).ok());
  EXPECT_FALSE(WeightRatioConstraints::Create({{0.0, 2.0}}).ok());   // l > 0
  EXPECT_FALSE(WeightRatioConstraints::Create({{2.0, 0.5}}).ok());   // l <= h
  EXPECT_TRUE(WeightRatioConstraints::Create({{0.5, 2.0}}).ok());
  EXPECT_TRUE(WeightRatioConstraints::Create({{1.0, 1.0}}).ok());    // point
}

TEST(WeightRatioTest, DimensionIsRangesPlusOne) {
  const auto wr =
      WeightRatioConstraints::Create({{0.5, 2.0}, {1.0, 3.0}}).value();
  EXPECT_EQ(wr.dim(), 3);
  EXPECT_DOUBLE_EQ(wr.lo(0), 0.5);
  EXPECT_DOUBLE_EQ(wr.hi(1), 3.0);
}

TEST(WeightRatioTest, KVertexLexicographicOrder) {
  const auto wr =
      WeightRatioConstraints::Create({{0.5, 2.0}, {1.0, 3.0}}).value();
  // 0-vertex is all-l, last vertex is all-h; the first coordinate is the
  // most significant choice (paper's lexicographic order).
  EXPECT_EQ(wr.RatioVertex(0), (Point{0.5, 1.0}));
  EXPECT_EQ(wr.RatioVertex(1), (Point{0.5, 3.0}));
  EXPECT_EQ(wr.RatioVertex(2), (Point{2.0, 1.0}));
  EXPECT_EQ(wr.RatioVertex(3), (Point{2.0, 3.0}));
}

TEST(WeightRatioTest, SimplexVerticesLieOnSimplexAndKeepRatios) {
  const auto wr =
      WeightRatioConstraints::Create({{0.5, 2.0}, {1.0, 3.0}}).value();
  const std::vector<Point> vertices = wr.SimplexVertices();
  ASSERT_EQ(vertices.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    const Point& v = vertices[static_cast<size_t>(k)];
    double sum = 0.0;
    for (int i = 0; i < 3; ++i) {
      EXPECT_GT(v[i], 0.0);
      sum += v[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    const Point ratio = wr.RatioVertex(k);
    EXPECT_NEAR(v[0] / v[2], ratio[0], 1e-12);
    EXPECT_NEAR(v[1] / v[2], ratio[1], 1e-12);
  }
}

TEST(WeightRatioTest, ToLinearConstraintsAcceptsExactlyTheBox) {
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const LinearConstraints lc = wr.ToLinearConstraints();
  EXPECT_EQ(lc.num_constraints(), 2);
  // ω = (r, 1)/(r+1) for r in and out of [0.5, 2].
  auto omega = [](double r) { return Point{r / (r + 1.0), 1.0 / (r + 1.0)}; };
  EXPECT_TRUE(lc.Satisfies(omega(0.5)));
  EXPECT_TRUE(lc.Satisfies(omega(1.3)));
  EXPECT_TRUE(lc.Satisfies(omega(2.0)));
  EXPECT_FALSE(lc.Satisfies(omega(0.4)));
  EXPECT_FALSE(lc.Satisfies(omega(2.2)));
}

TEST(WeightRatioTest, ExampleFromPaper) {
  // Example 1 uses F = {ω1 t1 + ω2 t2 | 0.5 ω2 <= ω1 <= 2 ω2}, i.e.
  // R = [0.5, 2] on ω1/ω2.
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const std::vector<Point> v = wr.SimplexVertices();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(v[0][0], 1.0 / 3.0, 1e-12);  // ratio 0.5 -> (1/3, 2/3)
  EXPECT_NEAR(v[0][1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(v[1][0], 2.0 / 3.0, 1e-12);  // ratio 2.0 -> (2/3, 1/3)
  EXPECT_NEAR(v[1][1], 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace arsp
