// Copyright 2026 The ARSP Authors.
//
// The metrics registry (src/obs/metrics.h): counter/gauge/histogram
// mechanics, instrument identity under label reordering, Prometheus text
// exposition shape, concurrent-increment exactness (which is also what the
// TSan job exercises), and the /metrics HTTP scrape endpoint over a real
// socket.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics_http.h"

namespace arsp {
namespace obs {
namespace {

TEST(CounterTest, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // The striped-shard design must lose nothing under contention.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncsPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(),
            static_cast<uint64_t>(kThreads) * kIncsPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(HistogramTest, ObservationsLandInCorrectBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are upper-inclusive)
  h.Observe(5.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(999.0);  // +Inf overflow
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_NEAR(h.Sum(), 0.5 + 1.0 + 5.0 + 100.0 + 999.0, 1e-6);
}

TEST(HistogramTest, ConcurrentObservesAreExact) {
  Histogram h(Histogram::LatencyBucketsMs());
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h.Observe(static_cast<double>(t) + 0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(),
            static_cast<uint64_t>(kThreads) * kObsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : h.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(HistogramTest, LatencyBucketsAreAscendingAndWide) {
  const std::vector<double> bounds = Histogram::LatencyBucketsMs();
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_LE(bounds.front(), 0.25);
  EXPECT_GE(bounds.back(), 8192.0);
}

TEST(RegistryTest, SameNameAndLabelsYieldSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("arsp_test_total", {{"k", "v"}});
  Counter* b = registry.GetCounter("arsp_test_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("arsp_test_total", {{"k", "w"}});
  EXPECT_NE(a, other);
}

TEST(RegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("arsp_test_total",
                                   {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("arsp_test_total",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, HistogramBoundsFixedAtFirstCreation) {
  MetricsRegistry registry;
  Histogram* first =
      registry.GetHistogram("arsp_test_ms", {1.0, 2.0}, {});
  Histogram* second =
      registry.GetHistogram("arsp_test_ms", {5.0, 6.0, 7.0}, {});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("arsp_queries_total", {{"solver", "kdtt+"}},
                      "Queries served.")
      ->Inc(3);
  registry.GetGauge("arsp_bytes_mapped", {}, "Mapped snapshot bytes.")
      ->Set(4096);
  Histogram* h = registry.GetHistogram("arsp_latency_ms", {1.0, 10.0}, {},
                                       "Query latency.");
  h->Observe(0.5);
  h->Observe(50.0);

  const std::string text = registry.RenderPrometheusText();
  // Counter family: HELP, TYPE, and the labeled series with its value.
  EXPECT_NE(text.find("# HELP arsp_queries_total Queries served."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE arsp_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("arsp_queries_total{solver=\"kdtt+\"} 3"),
            std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("# TYPE arsp_bytes_mapped gauge"), std::string::npos);
  EXPECT_NE(text.find("arsp_bytes_mapped 4096"), std::string::npos);
  // Histogram: cumulative le-buckets, +Inf, _sum and _count series.
  EXPECT_NE(text.find("# TYPE arsp_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("arsp_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("arsp_latency_ms_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("arsp_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("arsp_latency_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("arsp_latency_ms_sum 50.5"), std::string::npos);
  // Families render in lexical order.
  EXPECT_LT(text.find("arsp_bytes_mapped"), text.find("arsp_latency_ms"));
  EXPECT_LT(text.find("arsp_latency_ms"), text.find("arsp_queries_total"));
  // Exposition format ends every line with \n (last line included).
  EXPECT_EQ(text.back(), '\n');
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("arsp_esc_total",
                      {{"path", "a\"b\\c\nd"}})
      ->Inc();
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(RegistryTest, ConcurrentLookupsAndIncrements) {
  // Registration takes the only lock; hammer it from many threads while
  // incrementing to give TSan something to chew on.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry
            .GetCounter("arsp_shared_total",
                        {{"worker", std::to_string(t % 2)}})
            ->Inc();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t total =
      registry.GetCounter("arsp_shared_total", {{"worker", "0"}})->Value() +
      registry.GetCounter("arsp_shared_total", {{"worker", "1"}})->Value();
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 2000);
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// Sends raw HTTP bytes to 127.0.0.1:port and returns the full response
// (the server closes the connection after each reply).
std::string RawHttp(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpTest, ServesRegistrySnapshotAndRejectsEverythingElse) {
  MetricsRegistry registry;
  registry.GetCounter("arsp_http_test_total", {}, "Scrape test.")->Inc(7);

  MetricsHttpServer server(&registry);
  const Status started = server.Start("127.0.0.1", 0);  // ephemeral port
  ASSERT_TRUE(started.ok()) << started.ToString();
  ASSERT_GT(server.port(), 0);

  const std::string ok =
      RawHttp(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("arsp_http_test_total 7"), std::string::npos);

  // Query strings are ignored; the path still resolves.
  const std::string with_query =
      RawHttp(server.port(), "GET /metrics?debug=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);

  const std::string not_found =
      RawHttp(server.port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_NE(not_found.find("404"), std::string::npos);

  const std::string not_get =
      RawHttp(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(not_get.find("405"), std::string::npos);

  // Double-start while running is refused; Shutdown is idempotent and
  // releases the port for a future Start.
  EXPECT_FALSE(server.Start("127.0.0.1", 0).ok());
  server.Shutdown();
  server.Shutdown();
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  EXPECT_NE(RawHttp(server.port(), "GET /metrics HTTP/1.0\r\n\r\n")
                .find("200 OK"),
            std::string::npos);
  server.Shutdown();
}

TEST(MetricsHttpTest, ScrapeReflectsLiveUpdates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("arsp_live_total");
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  c->Inc();
  EXPECT_NE(RawHttp(server.port(), "GET /metrics HTTP/1.0\r\n\r\n")
                .find("arsp_live_total 1"),
            std::string::npos);
  c->Inc(9);
  EXPECT_NE(RawHttp(server.port(), "GET /metrics HTTP/1.0\r\n\r\n")
                .find("arsp_live_total 10"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace arsp
