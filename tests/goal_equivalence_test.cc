// Copyright 2026 The ARSP Authors.
//
// Goal-pushdown equivalence: for EVERY registered solver — with and without
// kCapGoalPushdown, on base datasets and on derived DatasetView contexts —
// a goal-pushed solve must select exactly the same objects in the same
// order as post-hoc slicing of that solver's full solve (the oracle), with
// probabilities equal up to the documented sub-ulp β drift of skipped
// subtrees, and ENUM cross-checks on tiny inputs. Tie cases are exercised
// at both cut sites: probability ties at the k-th object (id tie-break,
// count-controlled extension) and an object's probability exactly equal to
// the threshold.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/queries.h"
#include "src/core/solver.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::RandomWr;
using testing_util::WrRegion;

// Probabilities from a goal-pushed run may differ from the full run by the
// β-bookkeeping drift of skipped subtrees (documented at AnswerGoal);
// object identity and order must be exact.
constexpr double kDriftTolerance = 1e-12;

void ExpectRankedEquivalent(
    const std::vector<std::pair<int, double>>& oracle,
    const std::vector<std::pair<int, double>>& pushed,
    const std::string& label) {
  ASSERT_EQ(oracle.size(), pushed.size()) << label;
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].first, pushed[i].first) << label << " rank " << i;
    EXPECT_NEAR(oracle[i].second, pushed[i].second, kDriftTolerance)
        << label << " rank " << i;
  }
}

std::vector<QueryGoal> GoalsUnderTest(const ArspResult& reference,
                                      const DatasetView& view) {
  std::vector<QueryGoal> goals = {
      QueryGoal::TopK(1),          QueryGoal::TopK(3),
      QueryGoal::CountControlled(3), QueryGoal::Threshold(0.25),
      QueryGoal::Threshold(0.6),
  };
  // A threshold lying exactly on an object's probability: the p-threshold
  // boundary tie ("probability == threshold" must be included, as in the
  // post-hoc ObjectsAboveThreshold contract).
  const std::vector<std::pair<int, double>> ranked =
      TopKObjects(reference, view, -1);
  if (ranked.size() >= 2 && ranked[1].second > 0.0) {
    goals.push_back(QueryGoal::Threshold(ranked[1].second));
  }
  return goals;
}

// Solves `name` against a goal-scoped child of `full_context` for each goal
// and compares against post-hoc slicing of the solver's own full result.
// Inapplicable solvers are expected to fail validation identically with and
// without a goal.
void SweepSolverGoals(const std::string& name,
                      std::shared_ptr<ExecutionContext> full_context) {
  SCOPED_TRACE(name);
  auto solver = SolverRegistry::Create(name);
  ASSERT_TRUE(solver.ok());
  const bool has_pushdown =
      ((*solver)->capabilities() & kCapGoalPushdown) != 0;
  if (!(*solver)->ValidateContext(*full_context).ok()) return;
  auto reference = (*solver)->Solve(*full_context);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->is_complete());

  const DatasetView& view = full_context->view();
  for (const QueryGoal& goal : GoalsUnderTest(*reference, view)) {
    SCOPED_TRACE(goal.ToString());
    auto goal_context = ExecutionContext::Derive(full_context, view, goal);
    ASSERT_EQ(goal_context->goal(), goal);
    auto result = (*solver)->Solve(*goal_context);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!has_pushdown) {
      // Goal-oblivious solvers must return the full answer regardless.
      EXPECT_TRUE(result->is_complete());
      EXPECT_LT(MaxAbsDiff(*reference, *result), 1e-8);
    }
    double oracle_threshold = 0.0;
    double pushed_threshold = 0.0;
    const auto oracle = AnswerGoal(*reference, view, goal, &oracle_threshold);
    const auto pushed = AnswerGoal(*result, view, goal, &pushed_threshold);
    ExpectRankedEquivalent(oracle, pushed, name + "/" + goal.ToString());
    EXPECT_NEAR(oracle_threshold, pushed_threshold, kDriftTolerance);
  }
}

TEST(GoalEquivalence, RegistrySweepWeightRatios) {
  for (uint64_t seed = 600; seed < 604; ++seed) {
    SCOPED_TRACE(seed);
    const int dim = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset =
        RandomDataset(12, 3, dim, 0.4, seed, seed % 2 == 0);
    auto context =
        std::make_shared<ExecutionContext>(dataset, RandomWr(dim, seed));
    for (const std::string& name : SolverRegistry::Names()) {
      SweepSolverGoals(name, context);
    }
  }
}

TEST(GoalEquivalence, RegistrySweepWeakRankingAndSingleInstance2d) {
  // Weak-ranking constraints, plus the d=2 single-instance regime where
  // every solver (DUAL-2D-MS included, under ratios) participates.
  const UncertainDataset ranked_data = RandomDataset(15, 4, 3, 0.3, 700);
  auto ranked_context =
      std::make_shared<ExecutionContext>(ranked_data, WrRegion(3, 2));
  const UncertainDataset iip = RandomDataset(20, 1, 2, 0.5, 701);
  auto iip_context =
      std::make_shared<ExecutionContext>(iip, RandomWr(2, 701));
  for (const std::string& name : SolverRegistry::Names()) {
    SweepSolverGoals(name, ranked_context);
    SweepSolverGoals(name, iip_context);
  }
}

TEST(GoalEquivalence, RegistrySweepOnDerivedViewContexts) {
  // Goals must push down through the zero-copy view plane: goal children of
  // prefix and subset view contexts (derived from one base context, as the
  // engine's sweep path builds them) answer like sliced full view solves.
  const UncertainDataset dataset = RandomDataset(16, 3, 3, 0.4, 800);
  auto base = std::make_shared<ExecutionContext>(dataset, RandomWr(3, 800));
  const std::vector<ViewSpec> specs = {
      ViewSpec::Prefix(10),
      ViewSpec::Subset({0, 2, 3, 5, 7, 8, 10, 11, 13, 15}),
  };
  for (const ViewSpec& spec : specs) {
    SCOPED_TRACE(spec.CacheKey());
    auto view = DatasetView::Create(dataset, spec);
    ASSERT_TRUE(view.ok());
    auto derived = ExecutionContext::Derive(base, *view);
    ASSERT_TRUE(derived->goal().is_full());  // inherited from the base
    for (const std::string& name : SolverRegistry::Names()) {
      SweepSolverGoals(name, derived);
    }
  }
}

TEST(GoalEquivalence, EnumOracleOnTinyInputs) {
  // The exponential ground truth: pushdown answers of the traversal
  // solvers sliced against ENUM's exact full result.
  const UncertainDataset dataset = RandomDataset(7, 3, 2, 0.4, 900);
  ExecutionContext enum_context(dataset, WrRegion(2, 1));
  auto enum_solver = SolverRegistry::Create("enum");
  ASSERT_TRUE(enum_solver.ok());
  auto reference = (*enum_solver)->Solve(enum_context);
  ASSERT_TRUE(reference.ok());
  const DatasetView& view = enum_context.view();
  for (const char* name : {"kdtt", "kdtt+", "qdtt+", "mwtt", "bnb"}) {
    for (const QueryGoal& goal :
         {QueryGoal::TopK(2), QueryGoal::Threshold(0.5)}) {
      ExecutionContext context(dataset, WrRegion(2, 1), goal);
      auto solver = SolverRegistry::Create(name);
      ASSERT_TRUE(solver.ok());
      auto result = (*solver)->Solve(context);
      ASSERT_TRUE(result.ok());
      ExpectRankedEquivalent(AnswerGoal(*reference, view, goal),
                             AnswerGoal(*result, context.view(), goal),
                             std::string(name) + "/" + goal.ToString());
    }
  }
}

// ---------------------------------------------------------------- tie cases

// Objects 1 and 2 share an identical instance layout, so their rskyline
// probabilities are exactly equal doubles; object 0 is the certain winner
// (incomparable to the tied pair, dominating object 3). The exact tie sits
// at every interesting cut.
UncertainDataset TiedDataset() {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.1, 0.9}}, {1.0});
  builder.AddObject({Point{0.3, 0.5}, Point{0.5, 0.3}}, {0.5, 0.5});
  builder.AddObject({Point{0.3, 0.5}, Point{0.5, 0.3}}, {0.5, 0.5});
  builder.AddObject({Point{0.7, 0.8}, Point{0.9, 0.6}}, {0.5, 0.5});
  return std::move(builder.Build()).value();
}

TEST(GoalEquivalence, TiesAtTheKthObjectAndAtTheThreshold) {
  const UncertainDataset dataset = TiedDataset();
  const PreferenceRegion region = WrRegion(2, 1);
  ExecutionContext full(dataset, region);
  auto loop = SolverRegistry::Create("loop");
  ASSERT_TRUE(loop.ok());
  auto reference = (*loop)->Solve(full);
  ASSERT_TRUE(reference.ok());
  const std::vector<double> probs =
      ObjectProbabilities(*reference, dataset);
  ASSERT_EQ(probs[1], probs[2]);  // the exact tie the cuts land on
  ASSERT_GT(probs[1], 0.0);

  const DatasetView& view = full.view();
  for (const char* name : {"kdtt", "kdtt+", "qdtt+", "mwtt", "bnb"}) {
    SCOPED_TRACE(name);
    auto solver = SolverRegistry::Create(name);
    ASSERT_TRUE(solver.ok());

    // k = 2 cuts through the tie: id order keeps object 1, drops object 2.
    {
      const QueryGoal goal = QueryGoal::TopK(2);
      ExecutionContext context(dataset, region, goal);
      auto result = (*solver)->Solve(context);
      ASSERT_TRUE(result.ok());
      const auto pushed = AnswerGoal(*result, context.view(), goal);
      ExpectRankedEquivalent(AnswerGoal(*reference, view, goal), pushed,
                             "topk-tie");
      ASSERT_EQ(pushed.size(), 2u);
      EXPECT_EQ(pushed[1].first, 1);
    }
    // Count-controlled k = 2: the tie extends the answer to 3 objects.
    {
      const QueryGoal goal = QueryGoal::CountControlled(2);
      ExecutionContext context(dataset, region, goal);
      auto result = (*solver)->Solve(context);
      ASSERT_TRUE(result.ok());
      double threshold = 0.0;
      const auto pushed =
          AnswerGoal(*result, context.view(), goal, &threshold);
      double oracle_threshold = 0.0;
      ExpectRankedEquivalent(
          AnswerGoal(*reference, view, goal, &oracle_threshold), pushed,
          "count-tie");
      EXPECT_EQ(threshold, oracle_threshold);
      ASSERT_EQ(pushed.size(), 3u);  // ties only ever extend
    }
    // Threshold exactly equal to the tied probability: both included.
    {
      const QueryGoal goal = QueryGoal::Threshold(probs[1]);
      ExecutionContext context(dataset, region, goal);
      auto result = (*solver)->Solve(context);
      ASSERT_TRUE(result.ok());
      const auto pushed = AnswerGoal(*result, context.view(), goal);
      ExpectRankedEquivalent(AnswerGoal(*reference, view, goal), pushed,
                             "threshold-tie");
      ASSERT_EQ(pushed.size(), 3u);
      EXPECT_EQ(pushed[1].first, 1);
      EXPECT_EQ(pushed[2].first, 2);
    }
  }
}

}  // namespace
}  // namespace arsp
