// Copyright 2026 The ARSP Authors.

#include "src/uncertain/possible_worlds.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

UncertainDataset SmallDataset() {
  UncertainDatasetBuilder builder(1);
  builder.AddObject({Point{1.0}, Point{2.0}}, {0.5, 0.5});
  builder.AddSingleton(Point{3.0}, 0.6);
  auto out = builder.Build();
  return std::move(out).value();
}

TEST(PossibleWorldsTest, ProbabilitiesSumToOne) {
  const UncertainDataset dataset = SmallDataset();
  double total = 0.0;
  int count = 0;
  ForEachPossibleWorld(dataset, [&](const PossibleWorld& world) {
    total += world.prob;
    ++count;
  });
  EXPECT_EQ(count, 4);  // {t11,t12} x {t21, absent}
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PossibleWorldsTest, IndividualWorldProbabilities) {
  const UncertainDataset dataset = SmallDataset();
  ForEachPossibleWorld(dataset, [&](const PossibleWorld& world) {
    double expected = 1.0;
    expected *= world.choice[0] >= 0 ? 0.5 : 0.0;  // object 0 never absent
    expected *= world.choice[1] >= 0 ? 0.6 : 0.4;
    EXPECT_NEAR(world.prob, expected, 1e-12);
    EXPECT_NEAR(WorldProbability(dataset, world), expected, 1e-12);
  });
}

TEST(PossibleWorldsTest, PaperExample1WorldProbability) {
  // Example 1: T1 (2 instances, 1/2), T2 (3, 1/3), T3 (3, 1/3), T4 (2, 1/2);
  // the world {t1,1, t2,1, t3,1, t4,1} has probability 1/36.
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{2.0, 10.0}, Point{14.0, 14.0}}, {0.5, 0.5});
  builder.AddObject({Point{3.0, 3.0}, Point{8.0, 11.0}, Point{9.0, 12.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{6.0, 5.0}, Point{7.0, 6.0}, Point{10.0, 9.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{12.0, 1.0}, Point{13.0, 4.0}}, {0.5, 0.5});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());

  PossibleWorld world;
  world.choice = {0, 2, 5, 8};  // first instance of each object
  EXPECT_NEAR(WorldProbability(*dataset, world), 1.0 / 36.0, 1e-12);

  double total = 0.0;
  ForEachPossibleWorld(*dataset,
                       [&](const PossibleWorld& w) { total += w.prob; });
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PossibleWorldsTest, AbsentObjectsEnumerated) {
  UncertainDatasetBuilder builder(1);
  builder.AddSingleton(Point{1.0}, 0.25);
  builder.AddSingleton(Point{2.0}, 0.75);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  int absent_first = 0;
  ForEachPossibleWorld(*dataset, [&](const PossibleWorld& world) {
    if (world.choice[0] < 0) ++absent_first;
  });
  EXPECT_EQ(absent_first, 2);  // absent-first paired with both states of obj 1
}

TEST(PossibleWorldsTest, WorldCountGuard) {
  // 2^30 worlds must trip the guard.
  UncertainDatasetBuilder builder(1);
  for (int i = 0; i < 30; ++i) {
    builder.AddObject({Point{1.0}, Point{2.0}}, {0.5, 0.5});
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_DEATH(
      ForEachPossibleWorld(*dataset, [](const PossibleWorld&) {}, 1e6),
      "exceeds limit");
}

}  // namespace
}  // namespace arsp
