// Copyright 2026 The ARSP Authors.
//
// Parameterized property sweeps for the spatial indexes: every (n, dim,
// fan-out) combination must answer window aggregation and reporting queries
// identically to a brute-force scan, for bulk-loaded and incrementally
// grown trees alike, including duplicate-heavy grid data.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/index/kdtree.h"
#include "src/index/rtree.h"

namespace arsp {
namespace {

struct IndexCase {
  int n;
  int dim;
  int fanout;    // R-tree fan-out / kd-tree leaf size
  bool grid;     // snap coordinates to force duplicates
  uint64_t seed;
};

void PrintTo(const IndexCase& c, std::ostream* os) {
  *os << "n=" << c.n << " d=" << c.dim << " fanout=" << c.fanout
      << (c.grid ? " grid" : "") << " seed=" << c.seed;
}

class IndexSweep : public ::testing::TestWithParam<IndexCase> {
 protected:
  std::vector<RTree::LeafEntry> MakeEntries() const {
    const IndexCase& c = GetParam();
    Rng rng(c.seed);
    std::vector<RTree::LeafEntry> entries;
    for (int i = 0; i < c.n; ++i) {
      Point p(c.dim);
      for (int k = 0; k < c.dim; ++k) {
        double v = rng.Uniform01();
        if (c.grid) v = std::round(v * 8.0) / 8.0;
        p[k] = v;
      }
      entries.push_back(RTree::LeafEntry{std::move(p),
                                         rng.Uniform(0.0, 1.0), i});
    }
    return entries;
  }

  Mbr RandomBox(Rng& rng) const {
    const int dim = GetParam().dim;
    Point lo(dim), hi(dim);
    for (int k = 0; k < dim; ++k) {
      const double a = rng.Uniform01(), b = rng.Uniform01();
      lo[k] = std::min(a, b);
      hi[k] = std::max(a, b);
    }
    return Mbr(lo, hi);
  }
};

TEST_P(IndexSweep, RTreeBulkAndIncrementalAgreeWithBrute) {
  const IndexCase& c = GetParam();
  const auto entries = MakeEntries();
  const RTree bulk = RTree::BulkLoad(c.dim, entries, c.fanout);
  RTree incremental(c.dim, c.fanout);
  for (const auto& e : entries) incremental.Insert(e.point, e.weight, e.id);

  Rng rng(c.seed + 999);
  for (int trial = 0; trial < 25; ++trial) {
    const Mbr box = RandomBox(rng);
    double brute = 0.0;
    for (const auto& e : entries) {
      if (box.Contains(e.point)) brute += e.weight;
    }
    EXPECT_NEAR(bulk.WindowSum(box), brute, 1e-9) << trial;
    EXPECT_NEAR(incremental.WindowSum(box), brute, 1e-9) << trial;
  }
}

TEST_P(IndexSweep, KdTreeSumAndReportAgreeWithBrute) {
  const IndexCase& c = GetParam();
  const auto entries = MakeEntries();
  std::vector<KdItem> items;
  for (const auto& e : entries) {
    items.push_back(KdItem{e.point, e.id, e.weight});
  }
  const KdTree tree(items, c.fanout);

  Rng rng(c.seed + 777);
  for (int trial = 0; trial < 25; ++trial) {
    const Mbr box = RandomBox(rng);
    double brute = 0.0;
    std::vector<int> brute_ids;
    for (const auto& e : entries) {
      if (box.Contains(e.point)) {
        brute += e.weight;
        brute_ids.push_back(e.id);
      }
    }
    EXPECT_NEAR(tree.SumInBox(box), brute, 1e-9);
    std::vector<int> got;
    tree.ForEachInBox(box,
                      [&](const KdTree::EntryRef& it) { got.push_back(it.id); });
    std::sort(got.begin(), got.end());
    std::sort(brute_ids.begin(), brute_ids.end());
    EXPECT_EQ(got, brute_ids);
  }
}

TEST_P(IndexSweep, KdTreeHalfspaceAgreesWithBrute) {
  const IndexCase& c = GetParam();
  const auto entries = MakeEntries();
  std::vector<KdItem> items;
  for (const auto& e : entries) items.push_back(KdItem{e.point, e.id, e.weight});
  const KdTree tree(items, c.fanout);

  Rng rng(c.seed + 555);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> coef(static_cast<size_t>(c.dim - 1));
    for (double& v : coef) v = rng.Uniform(-2.0, 2.0);
    const Hyperplane hp(coef, rng.Uniform(-1.0, 1.0));
    std::vector<int> got;
    tree.ForEachInBoxBelow(
        tree.root_mbr(), hp, 0.0,
        [&](const KdTree::EntryRef& it) { got.push_back(it.id); });
    std::vector<int> brute;
    for (const auto& e : entries) {
      if (hp.SignedDistance(e.point) <= 0.0) brute.push_back(e.id);
    }
    std::sort(got.begin(), got.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(got, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexSweep,
    ::testing::Values(
        IndexCase{1, 2, 4, false, 1}, IndexCase{17, 2, 4, false, 2},
        IndexCase{64, 3, 8, false, 3}, IndexCase{200, 2, 16, true, 4},
        IndexCase{500, 4, 8, false, 5}, IndexCase{500, 2, 4, true, 6},
        IndexCase{1000, 3, 32, false, 7}, IndexCase{333, 5, 8, false, 8},
        IndexCase{100, 2, 64, true, 9}, IndexCase{2000, 2, 8, false, 10}));

}  // namespace
}  // namespace arsp
