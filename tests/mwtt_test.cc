// Copyright 2026 The ARSP Authors.

#include "src/core/mwtt_algorithm.h"

#include <gtest/gtest.h>

#include "src/core/enum_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::WrRegion;

struct FanoutCase {
  int fanout;
  int dim;
  uint64_t seed;
};

void PrintTo(const FanoutCase& c, std::ostream* os) {
  *os << "fanout=" << c.fanout << " d=" << c.dim << " seed=" << c.seed;
}

class MwttSweep : public ::testing::TestWithParam<FanoutCase> {};

TEST_P(MwttSweep, AgreesWithLoop) {
  const FanoutCase& c = GetParam();
  const UncertainDataset dataset =
      RandomDataset(40, 4, c.dim, 0.25, c.seed, c.seed % 2 == 0);
  const PreferenceRegion region = WrRegion(c.dim, c.dim - 1);
  EXPECT_LT(MaxAbsDiff(ComputeArspLoop(dataset, region),
                       ComputeArspMwtt(dataset, region, {.fanout = c.fanout})),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MwttSweep,
    ::testing::Values(FanoutCase{2, 2, 1}, FanoutCase{2, 4, 2},
                      FanoutCase{4, 3, 3}, FanoutCase{8, 3, 4},
                      FanoutCase{8, 5, 5}, FanoutCase{16, 2, 6},
                      FanoutCase{16, 4, 7}, FanoutCase{32, 3, 8},
                      FanoutCase{64, 2, 9}, FanoutCase{3, 3, 10}));

TEST(MwttTest, MatchesEnumOnTinyInputs) {
  for (uint64_t seed = 70; seed < 76; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 2);
    const UncertainDataset dataset = RandomDataset(6, 3, dim, 0.4, seed);
    const PreferenceRegion region = WrRegion(dim, dim - 1);
    EXPECT_LT(MaxAbsDiff(ComputeArspEnum(dataset, region),
                         ComputeArspMwtt(dataset, region)),
              1e-10)
        << seed;
  }
}

TEST(MwttTest, PrunesUnderFullDominator) {
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.0, 0.0}, 1.0);
  Rng rng(4);
  for (int j = 0; j < 100; ++j) {
    builder.AddSingleton(Point{rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)},
                         1.0);
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult result = ComputeArspMwtt(*dataset, region);
  EXPECT_EQ(CountNonZero(result), 1);
  EXPECT_GT(result.nodes_pruned, 0);
}

TEST(MwttTest, DuplicateHeavyData) {
  UncertainDatasetBuilder builder(2);
  for (int j = 0; j < 8; ++j) {
    builder.AddObject({Point{0.5, 0.5}, Point{0.75, 0.25}}, {0.5, 0.5});
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  EXPECT_LT(MaxAbsDiff(ComputeArspEnum(*dataset, region),
                       ComputeArspMwtt(*dataset, region)),
            1e-10);
}

}  // namespace
}  // namespace arsp
