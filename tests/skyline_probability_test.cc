// Copyright 2026 The ARSP Authors.

#include "src/core/skyline_probability.h"

#include <gtest/gtest.h>

#include "src/core/enum_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "src/prefs/preference_region.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;

TEST(SkylineProbabilityTest, MatchesEnumOnTinyData) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 2);
    const UncertainDataset dataset = RandomDataset(6, 3, dim, 0.3, seed);
    const ArspResult expected = ComputeArspEnum(
        dataset, PreferenceRegion::FullSimplex(dim));
    EXPECT_LT(MaxAbsDiff(expected, ComputeAllSkylineProbabilities(dataset)),
              1e-10)
        << seed;
  }
}

TEST(SkylineProbabilityTest, DominatedInstanceScaledByDominatorMass) {
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.1, 0.9}, 0.5);   // incomparable to below
  builder.AddSingleton(Point{0.2, 0.2}, 0.25);  // dominates (0.8, 0.8)
  builder.AddSingleton(Point{0.8, 0.8}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const ArspResult result = ComputeAllSkylineProbabilities(*dataset);
  EXPECT_NEAR(result.instance_probs[0], 0.5, 1e-12);
  EXPECT_NEAR(result.instance_probs[1], 0.25, 1e-12);
  EXPECT_NEAR(result.instance_probs[2], 0.75, 1e-12);
}

TEST(SkylineProbabilityTest, RskylineProbNeverExceedsSkylineProb) {
  // F-dominance extends coordinate dominance, so Pr_rsky(t) <= Pr_sky(t)
  // for every instance — the paper's first Table-II observation.
  const UncertainDataset dataset = RandomDataset(25, 4, 3, 0.2, 13);
  const ArspResult sky = ComputeAllSkylineProbabilities(dataset);
  const ArspResult rsky =
      ComputeArspLoop(dataset, testing_util::WrRegion(3, 2));
  for (int i = 0; i < dataset.num_instances(); ++i) {
    EXPECT_LE(rsky.instance_probs[static_cast<size_t>(i)],
              sky.instance_probs[static_cast<size_t>(i)] + 1e-10)
        << i;
  }
}

}  // namespace
}  // namespace arsp
