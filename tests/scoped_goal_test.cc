// Copyright 2026 The ARSP Authors.
//
// Evaluation-scope equivalence: for EVERY registered solver, a scoped solve
// (QueryGoal with [scope_begin, scope_end)) must answer *bit-identically* to
// slicing the solver's own unscoped full solve to the scope. This is the
// foundation of the cluster coordinator (src/cluster/): shards hold the full
// dataset and solve disjoint scopes, and their merged answers must be
// bit-identical to the unsharded answer. Bit-identity (EXPECT_EQ on doubles,
// not EXPECT_NEAR) holds because (a) AspTraversalState's undo is
// snapshot-based, so skipped subtrees are exact no-ops, and (b) B&B's
// evaluated instances never depend on pruner state (skipped items still
// insert their mass).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/queries.h"
#include "src/core/solver.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::RandomWr;

// Contiguous splits of [0, m) used as scopes: the {1, 2, 3, 7}-way even
// partitions plus deliberately skewed cuts.
std::vector<std::pair<int, int>> ScopesUnderTest(int m) {
  std::vector<std::pair<int, int>> scopes;
  for (int parts : {1, 2, 3, 7}) {
    for (int s = 0; s < parts; ++s) {
      const int begin = static_cast<int>(static_cast<int64_t>(m) * s / parts);
      const int end =
          static_cast<int>(static_cast<int64_t>(m) * (s + 1) / parts);
      if (begin < end) scopes.emplace_back(begin, end);
    }
  }
  if (m >= 3) {
    scopes.emplace_back(0, 1);          // single object
    scopes.emplace_back(m - 1, m);      // last object only
    scopes.emplace_back(1, m);          // all but the first
    scopes.emplace_back(m / 2, m / 2);  // empty scope
  }
  return scopes;
}

void ExpectRankedBitIdentical(
    const std::vector<std::pair<int, double>>& oracle,
    const std::vector<std::pair<int, double>>& scoped,
    const std::string& label) {
  ASSERT_EQ(oracle.size(), scoped.size()) << label;
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].first, scoped[i].first) << label << " rank " << i;
    EXPECT_EQ(oracle[i].second, scoped[i].second) << label << " rank " << i;
  }
}

void SweepSolverScopes(const std::string& name,
                       std::shared_ptr<ExecutionContext> full_context) {
  SCOPED_TRACE(name);
  auto solver = SolverRegistry::Create(name);
  ASSERT_TRUE(solver.ok());
  if (!(*solver)->ValidateContext(*full_context).ok()) return;
  const bool has_pushdown =
      ((*solver)->capabilities() & kCapGoalPushdown) != 0;
  auto reference = (*solver)->Solve(*full_context);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->is_complete());

  const DatasetView& view = full_context->view();
  const int m = view.num_objects();
  for (const auto& [begin, end] : ScopesUnderTest(m)) {
    SCOPED_TRACE("scope [" + std::to_string(begin) + "," +
                 std::to_string(end) + ")");
    std::vector<QueryGoal> goals = {
        QueryGoal::Full().WithScope(begin, end),
        QueryGoal::TopK(1).WithScope(begin, end),
        QueryGoal::TopK(2).WithScope(begin, end),
        QueryGoal::CountControlled(2).WithScope(begin, end),
        QueryGoal::Threshold(0.25).WithScope(begin, end),
        // k >= |scope|: bound pruning is off, scope skipping stays on.
        QueryGoal::TopK(end - begin + 1).WithScope(begin, end),
    };
    for (const QueryGoal& goal : goals) {
      SCOPED_TRACE(goal.ToString());
      auto scoped_context = ExecutionContext::Derive(full_context, view, goal);
      auto result = (*solver)->Solve(*scoped_context);
      ASSERT_TRUE(result.ok()) << result.status().ToString();

      // The ranked scoped answer must be a bit-identical slice of the
      // solver's own full answer.
      double oracle_threshold = 0.0;
      double scoped_threshold = 0.0;
      const auto oracle =
          AnswerGoal(*reference, view, goal, &oracle_threshold);
      const auto scoped =
          AnswerGoal(*result, view, goal, &scoped_threshold);
      ExpectRankedBitIdentical(oracle, scoped, name);
      EXPECT_EQ(oracle_threshold, scoped_threshold);

      // A scoped-full solve determines every in-scope instance probability
      // bit-exactly (partial results leave out-of-scope entries as
      // placeholders; complete results match everywhere in scope).
      if (goal.is_full()) {
        for (int j = begin; j < end; ++j) {
          const auto [ib, ie] = view.object_range(j);
          for (int i = ib; i < ie; ++i) {
            EXPECT_EQ(result->instance_probs[static_cast<size_t>(i)],
                      reference->instance_probs[static_cast<size_t>(i)])
                << "instance " << i << " of object " << j;
          }
        }
      }
      if (!has_pushdown) {
        // Goal-oblivious solvers ignore the scope and stay complete.
        EXPECT_TRUE(result->is_complete());
      }
    }
  }
}

TEST(ScopedGoal, RegistrySweepBitIdenticalSlices) {
  for (uint64_t seed = 7100; seed < 7103; ++seed) {
    SCOPED_TRACE(seed);
    const int dim = 2 + static_cast<int>(seed % 2);
    const UncertainDataset dataset =
        RandomDataset(14, 3, dim, 0.4, seed, seed % 2 == 0);
    auto context =
        std::make_shared<ExecutionContext>(dataset, RandomWr(dim, seed));
    for (const std::string& name : SolverRegistry::Names()) {
      SweepSolverScopes(name, context);
    }
  }
}

TEST(ScopedGoal, ScopedUnionCoversFullAnswer) {
  // The disjoint scoped-full answers of a partition, concatenated, must
  // reproduce the complete instance vector bit-for-bit — the coordinator's
  // full-goal merge in miniature.
  const UncertainDataset dataset = RandomDataset(15, 3, 2, 0.5, 7200);
  auto context =
      std::make_shared<ExecutionContext>(dataset, RandomWr(2, 7200));
  auto solver = SolverRegistry::Create("kdtt+");
  ASSERT_TRUE(solver.ok());
  auto reference = (*solver)->Solve(*context);
  ASSERT_TRUE(reference.ok());
  const DatasetView& view = context->view();
  const int m = view.num_objects();

  std::vector<double> stitched(reference->instance_probs.size(), -1.0);
  const std::vector<std::pair<int, int>> parts = {
      {0, 4}, {4, 5}, {5, 12}, {12, m}};  // deliberately skewed
  for (const auto& [begin, end] : parts) {
    const QueryGoal goal = QueryGoal::Full().WithScope(begin, end);
    auto scoped_context = ExecutionContext::Derive(context, view, goal);
    auto result = (*solver)->Solve(*scoped_context);
    ASSERT_TRUE(result.ok());
    const auto [ib, ie] = std::make_pair(
        view.object_range(begin).first, view.object_range(end - 1).second);
    for (int i = ib; i < ie; ++i) {
      stitched[static_cast<size_t>(i)] =
          result->instance_probs[static_cast<size_t>(i)];
    }
  }
  for (size_t i = 0; i < stitched.size(); ++i) {
    EXPECT_EQ(stitched[i], reference->instance_probs[i]) << "instance " << i;
  }
}

}  // namespace
}  // namespace arsp
