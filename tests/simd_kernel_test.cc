// Copyright 2026 The ARSP Authors.
//
// The SIMD kernel layer's contract suite (src/simd/):
//
//   * per-kernel sweeps comparing every non-scalar table against the scalar
//     reference, bit for bit, across odd sizes (n = 0, 1, vector width ± 1,
//     gather permutations, unaligned tails) and adversarial values
//     (±0.0 ties, exact duplicates);
//   * dispatch behavior: SupportedArches is consistent with the tables,
//     overrides to unsupported arches are rejected;
//   * a registry-wide equivalence pass: every registered solver must
//     produce bit-identical ArspResults under every supported dispatch
//     arch — the end-to-end form of the bit-identity contract.
//
// CI additionally runs this binary under ASan/UBSan with ARSP_KERNEL=scalar
// and with the native arch, which covers the environment-variable override
// path the in-process sweeps cannot reach (dispatch resolves once).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/aligned.h"
#include "src/common/rng.h"
#include "src/core/solver.h"
#include "src/simd/kernels.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using simd::KernelArch;
using simd::KernelOps;
using testing_util::RandomDataset;
using testing_util::WrRegion;

// Sizes straddling every vector width in play: 0, 1, the 2-lane NEON and
// 4-lane AVX2 widths ± 1, and larger blocks with ragged tails.
const int kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64};
const int kDims[] = {1, 2, 3, 4, 5, 8};

std::vector<const KernelOps*> NonScalarTables() {
  std::vector<const KernelOps*> tables;
  if (const KernelOps* avx2 = simd::internal::Avx2OpsOrNull()) {
    tables.push_back(avx2);
  }
  if (const KernelOps* neon = simd::internal::NeonOpsOrNull()) {
    tables.push_back(neon);
  }
  return tables;
}

// Random doubles with deliberate degeneracies: exact duplicates (grid
// snapping) and signed zeros, the values where min/max tie-breaking and
// comparison semantics can diverge between implementations.
AlignedVector<double> AdversarialStream(int count, uint64_t seed) {
  Rng rng(seed);
  AlignedVector<double> out(static_cast<size_t>(count));
  for (double& v : out) {
    const int kind = rng.UniformInt(0, 9);
    if (kind == 0) {
      v = 0.0;
    } else if (kind == 1) {
      v = -0.0;
    } else if (kind <= 4) {
      v = std::round(rng.Uniform(-2.0, 2.0) * 4.0) / 4.0;  // coarse grid
    } else {
      v = rng.Uniform(-1.0, 1.0);
    }
  }
  return out;
}

std::vector<int> Permutation(int n, uint64_t seed) {
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  Rng rng(seed);
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  return ids;
}

// Bitwise equality — the contract is bit-identity, not ==, so -0.0 vs +0.0
// mismatches (which == would pass) fail here.
::testing::AssertionResult BitEqual(const double* a, const double* b, int n) {
  for (int i = 0; i < n; ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(KernelSweep, ClassifyCorners) {
  for (const KernelOps* table : NonScalarTables()) {
    for (const int dim : kDims) {
      for (const int n : kSizes) {
        SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) +
                     " dim=" + std::to_string(dim) + " n=" +
                     std::to_string(n));
        const AlignedVector<double> coords =
            AdversarialStream(n * dim, 1000 + static_cast<uint64_t>(n));
        const AlignedVector<double> corners =
            AdversarialStream(2 * dim, 2000 + static_cast<uint64_t>(dim));
        const std::vector<int> ids =
            Permutation(n, static_cast<uint64_t>(n) * 7 + 1);
        std::vector<unsigned char> expected(static_cast<size_t>(n) + 1, 0xee);
        std::vector<unsigned char> actual(static_cast<size_t>(n) + 1, 0xee);
        simd::internal::ScalarOps().ClassifyCorners(
            coords.data(), dim, ids.data(), n, corners.data(),
            corners.data() + dim, expected.data());
        table->ClassifyCorners(coords.data(), dim, ids.data(), n,
                               corners.data(), corners.data() + dim,
                               actual.data());
        EXPECT_EQ(expected, actual);
      }
    }
  }
}

TEST(KernelSweep, ScoreCorners) {
  for (const KernelOps* table : NonScalarTables()) {
    for (const int dim : kDims) {
      for (const int n : kSizes) {
        SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) +
                     " dim=" + std::to_string(dim) + " n=" +
                     std::to_string(n));
        const AlignedVector<double> coords =
            AdversarialStream(n * dim, 3000 + static_cast<uint64_t>(n));
        const std::vector<int> ids =
            Permutation(n, static_cast<uint64_t>(n) * 5 + 3);
        // Seed corners from adversarial values too, so ties between the
        // incumbent and a row (including -0.0 vs +0.0) occur.
        const AlignedVector<double> seed_corners =
            AdversarialStream(2 * dim, 4000 + static_cast<uint64_t>(dim));
        AlignedVector<double> expected(seed_corners);
        AlignedVector<double> actual(seed_corners);
        simd::internal::ScalarOps().ScoreCorners(coords.data(), dim,
                                                 ids.data(), n,
                                                 expected.data(),
                                                 expected.data() + dim);
        table->ScoreCorners(coords.data(), dim, ids.data(), n, actual.data(),
                            actual.data() + dim);
        EXPECT_TRUE(BitEqual(expected.data(), actual.data(), 2 * dim));
      }
    }
  }
}

TEST(KernelSweep, DominatedMaskCountAndAny) {
  for (const KernelOps* table : NonScalarTables()) {
    for (const int dim : kDims) {
      for (const int n : kSizes) {
        SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) +
                     " dim=" + std::to_string(dim) + " n=" +
                     std::to_string(n));
        const AlignedVector<double> rows =
            AdversarialStream(n * dim, 5000 + static_cast<uint64_t>(n));
        const AlignedVector<double> q =
            AdversarialStream(dim, 6000 + static_cast<uint64_t>(dim));
        std::vector<unsigned char> expected(static_cast<size_t>(n) + 1, 0xee);
        std::vector<unsigned char> actual(static_cast<size_t>(n) + 1, 0xee);
        simd::internal::ScalarOps().DominatedMask(rows.data(), n, dim,
                                                  q.data(), expected.data());
        table->DominatedMask(rows.data(), n, dim, q.data(), actual.data());
        EXPECT_EQ(expected, actual);
        EXPECT_EQ(
            simd::internal::ScalarOps().DominanceCount(rows.data(), n, dim,
                                                       q.data()),
            table->DominanceCount(rows.data(), n, dim, q.data()));
        EXPECT_EQ(
            simd::internal::ScalarOps().AnyRowDominates(rows.data(), n, dim,
                                                        q.data()),
            table->AnyRowDominates(rows.data(), n, dim, q.data()));
      }
    }
  }
}

TEST(KernelSweep, MapPoint) {
  for (const KernelOps* table : NonScalarTables()) {
    for (const int d : kDims) {
      for (const int dprime : kSizes) {
        if (dprime == 0) continue;
        SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) + " d=" +
                     std::to_string(d) + " d'=" + std::to_string(dprime));
        const AlignedVector<double> t =
            AdversarialStream(d, 7000 + static_cast<uint64_t>(d));
        const AlignedVector<double> vt = AdversarialStream(
            d * dprime, 8000 + static_cast<uint64_t>(dprime));
        AlignedVector<double> expected(static_cast<size_t>(dprime));
        AlignedVector<double> actual(static_cast<size_t>(dprime));
        simd::internal::ScalarOps().MapPoint(t.data(), d, vt.data(), dprime,
                                             expected.data());
        table->MapPoint(t.data(), d, vt.data(), dprime, actual.data());
        EXPECT_TRUE(BitEqual(expected.data(), actual.data(), dprime));
      }
    }
  }
}

TEST(KernelSweep, SumProbs) {
  for (const KernelOps* table : NonScalarTables()) {
    for (const int n : kSizes) {
      SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) + " n=" +
                   std::to_string(n));
      const AlignedVector<double> probs =
          AdversarialStream(n, 9000 + static_cast<uint64_t>(n));
      const double expected =
          simd::internal::ScalarOps().SumProbs(probs.data(), n);
      const double actual = table->SumProbs(probs.data(), n);
      EXPECT_TRUE(BitEqual(&expected, &actual, 1));
      // Unaligned tail: the same stream shifted off its 64-byte base.
      if (n >= 1) {
        const double e1 =
            simd::internal::ScalarOps().SumProbs(probs.data() + 1, n - 1);
        const double a1 = table->SumProbs(probs.data() + 1, n - 1);
        EXPECT_TRUE(BitEqual(&e1, &a1, 1));
      }
    }
  }
}

TEST(KernelSweep, BoundSweepMask) {
  for (const KernelOps* table : NonScalarTables()) {
    for (const int m : kSizes) {
      SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) + " m=" +
                   std::to_string(m));
      const AlignedVector<double> lower =
          AdversarialStream(m, 10000 + static_cast<uint64_t>(m));
      const AlignedVector<double> pending =
          AdversarialStream(m, 11000 + static_cast<uint64_t>(m));
      Rng rng(12000 + static_cast<uint64_t>(m));
      std::vector<unsigned char> decided(static_cast<size_t>(m));
      for (unsigned char& d : decided) d = rng.Bernoulli(0.3) ? 1 : 0;
      // A threshold that some lower+pending sums tie exactly (grid values).
      for (const double threshold : {0.25, 0.5, 1.0}) {
        std::vector<unsigned char> expected(static_cast<size_t>(m) + 1, 0xee);
        std::vector<unsigned char> actual(static_cast<size_t>(m) + 1, 0xee);
        simd::internal::ScalarOps().BoundSweepMask(
            lower.data(), pending.data(), decided.data(), m, threshold,
            expected.data());
        table->BoundSweepMask(lower.data(), pending.data(), decided.data(),
                              m, threshold, actual.data());
        EXPECT_EQ(expected, actual);
      }
    }
  }
}

// Rows gathered through ids at an offset: kernels must not assume the
// gather base is aligned or that ids start at 0.
TEST(KernelSweep, UnalignedGatherWindows) {
  for (const KernelOps* table : NonScalarTables()) {
    const int dim = 3;
    const int total = 40;
    const AlignedVector<double> coords = AdversarialStream(total * dim, 13);
    const AlignedVector<double> corners = AdversarialStream(2 * dim, 14);
    std::vector<int> ids = Permutation(total, 15);
    for (int begin : {0, 1, 2, 3, 5}) {
      for (int count : {0, 1, 2, 3, 4, 5, 9}) {
        SCOPED_TRACE(std::string(simd::KernelArchName(table->arch)) +
                     " begin=" + std::to_string(begin) + " count=" +
                     std::to_string(count));
        std::vector<unsigned char> expected(static_cast<size_t>(count) + 1,
                                            0xee);
        std::vector<unsigned char> actual(static_cast<size_t>(count) + 1,
                                          0xee);
        simd::internal::ScalarOps().ClassifyCorners(
            coords.data(), dim, ids.data() + begin, count, corners.data(),
            corners.data() + dim, expected.data());
        table->ClassifyCorners(coords.data(), dim, ids.data() + begin, count,
                               corners.data(), corners.data() + dim,
                               actual.data());
        EXPECT_EQ(expected, actual);
      }
    }
  }
}

// ------------------------------------------------------------- dispatch

TEST(KernelDispatch, SupportedArchesMatchesTables) {
  const std::vector<KernelArch> arches = simd::SupportedArches();
  ASSERT_FALSE(arches.empty());
  EXPECT_EQ(arches.front(), KernelArch::kScalar);
  const bool has_avx2 = simd::internal::Avx2OpsOrNull() != nullptr;
  const bool has_neon = simd::internal::NeonOpsOrNull() != nullptr;
  EXPECT_EQ(std::count(arches.begin(), arches.end(), KernelArch::kAvx2),
            has_avx2 ? 1 : 0);
  EXPECT_EQ(std::count(arches.begin(), arches.end(), KernelArch::kNeon),
            has_neon ? 1 : 0);
}

TEST(KernelDispatch, UnsupportedOverrideIsRejected) {
  const KernelArch original = simd::ActiveArch();
  const std::vector<KernelArch> arches = simd::SupportedArches();
  for (const KernelArch arch :
       {KernelArch::kScalar, KernelArch::kAvx2, KernelArch::kNeon}) {
    const bool supported =
        std::count(arches.begin(), arches.end(), arch) > 0;
    EXPECT_EQ(simd::internal::SetArchForTesting(arch), supported);
    if (supported) {
      EXPECT_EQ(simd::ActiveArch(), arch);
      EXPECT_EQ(simd::Ops().arch, arch);
      EXPECT_STREQ(simd::ActiveArchName(), simd::KernelArchName(arch));
    }
  }
  ASSERT_TRUE(simd::internal::SetArchForTesting(original));
}

// ------------------------------------- registry-wide per-arch equivalence

// Every registered solver, run under every supported dispatch arch, must
// produce a bit-identical ArspResult: identical instance probabilities,
// identical goal bounds, identical deterministic work counters. This is the
// theorem the whole layer rests on — SIMD is a pure speedup, never a
// semantic change.
void SweepArchesThroughRegistry(const UncertainDataset& dataset,
                                const PreferenceRegion& region,
                                const QueryGoal& goal) {
  const KernelArch original = simd::ActiveArch();
  struct PerSolver {
    ArspResult result;
    bool ran = false;
  };
  std::map<std::string, PerSolver> reference;  // scalar-arch results

  for (const KernelArch arch : simd::SupportedArches()) {
    SCOPED_TRACE(simd::KernelArchName(arch));
    ASSERT_TRUE(simd::internal::SetArchForTesting(arch));
    for (const std::string& name : SolverRegistry::Names()) {
      SCOPED_TRACE(name);
      auto solver = SolverRegistry::Create(name);
      ASSERT_TRUE(solver.ok()) << name;
      // Fresh context per (arch, solver): cached artifacts (score buffers)
      // must be rebuilt under the arch being tested.
      ExecutionContext context(dataset, region, goal);
      if (!(*solver)->ValidateContext(context).ok()) continue;
      auto result = (*solver)->Solve(context);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      PerSolver& ref = reference[name];
      if (!ref.ran) {  // first arch in SupportedArches() is scalar
        ref.result = std::move(*result);
        ref.ran = true;
        continue;
      }
      const ArspResult& a = ref.result;
      const ArspResult& b = *result;
      ASSERT_EQ(a.instance_probs.size(), b.instance_probs.size());
      EXPECT_TRUE(BitEqual(a.instance_probs.data(), b.instance_probs.data(),
                           static_cast<int>(a.instance_probs.size())));
      ASSERT_EQ(a.object_bounds.size(), b.object_bounds.size());
      for (size_t j = 0; j < a.object_bounds.size(); ++j) {
        EXPECT_TRUE(BitEqual(&a.object_bounds[j].lower,
                             &b.object_bounds[j].lower, 1))
            << "object " << j;
        EXPECT_TRUE(BitEqual(&a.object_bounds[j].upper,
                             &b.object_bounds[j].upper, 1))
            << "object " << j;
      }
      EXPECT_EQ(a.object_decisions, b.object_decisions);
      EXPECT_EQ(a.dominance_tests, b.dominance_tests);
      EXPECT_EQ(a.nodes_visited, b.nodes_visited);
      EXPECT_EQ(a.objects_pruned, b.objects_pruned);
      EXPECT_EQ(a.bound_refinements, b.bound_refinements);
      EXPECT_EQ(a.complete, b.complete);
    }
  }
  ASSERT_TRUE(simd::internal::SetArchForTesting(original));
}

TEST(ArchEquivalence, FullGoalAcrossRegistry) {
  for (uint64_t seed = 900; seed < 903; ++seed) {
    SCOPED_TRACE(seed);
    const int dim = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset =
        RandomDataset(12, 3, dim, 0.4, seed, seed % 2 == 0);
    SweepArchesThroughRegistry(dataset, WrRegion(dim, dim - 1),
                               QueryGoal::Full());
  }
}

TEST(ArchEquivalence, TopKGoalAcrossRegistry) {
  const UncertainDataset dataset = RandomDataset(15, 3, 3, 0.4, 910, true);
  SweepArchesThroughRegistry(dataset, WrRegion(3, 2), QueryGoal::TopK(4));
}

TEST(ArchEquivalence, ThresholdGoalAcrossRegistry) {
  const UncertainDataset dataset = RandomDataset(15, 3, 3, 0.4, 911);
  SweepArchesThroughRegistry(dataset, WrRegion(3, 2),
                             QueryGoal::Threshold(0.3));
}

}  // namespace
}  // namespace arsp
