// Copyright 2026 The ARSP Authors.
//
// Exit-code / usage hygiene for arsp_cli flag parsing: unknown flags,
// missing values, malformed numbers, and conflicting mode combinations must
// all be caught at parse time (main turns a false return into stderr usage
// + exit 2). The parser is covered directly — tools/cli_args.h — so the
// tests need no subprocess.

#include "tools/cli_args.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace arsp {
namespace {

using cli::CliArgs;
using cli::ParseCliArgs;

// argv builder: copies the strings and exposes a char** like main's.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "arsp_cli");
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

bool Parse(std::vector<std::string> cl, CliArgs* args, std::string* error) {
  Argv argv(std::move(cl));
  return ParseCliArgs(argv.argc(), argv.argv(), args, error);
}

TEST(CliArgsTest, MinimalLocalInvocationParses) {
  CliArgs args;
  std::string error;
  ASSERT_TRUE(Parse({"--input", "d.csv", "--constraints", "wr:0.5,2.0"},
                    &args, &error))
      << error;
  EXPECT_EQ(args.input, "d.csv");
  EXPECT_EQ(args.constraints, "wr:0.5,2.0");
  EXPECT_EQ(args.algo, "auto");
  EXPECT_FALSE(args.remote);
}

TEST(CliArgsTest, UnknownFlagFails) {
  CliArgs args;
  std::string error;
  EXPECT_FALSE(Parse({"--input", "d.csv", "--constraints", "wr:1,2",
                      "--bogus"},
                     &args, &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos) << error;
}

TEST(CliArgsTest, MissingValueNamesTheFlag) {
  for (const char* flag :
       {"--input", "--constraints", "--batch", "--algo", "--opt", "--repeat",
        "--subset", "--topk", "--threshold", "--instances", "--objects",
        "--connect", "--name"}) {
    CliArgs args;
    std::string error;
    EXPECT_FALSE(Parse({flag}, &args, &error)) << flag;
    EXPECT_NE(error.find(flag), std::string::npos) << error;
  }
}

TEST(CliArgsTest, MalformedNumbersFail) {
  CliArgs args;
  std::string error;
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--repeat", "x"},
                     &args, &error));
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--repeat", "0"},
                     &args, &error));
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--topk", "3x"},
                     &args, &error));
  EXPECT_FALSE(Parse(
      {"--input", "d", "--constraints", "c", "--threshold", "half"}, &args,
      &error));
  EXPECT_FALSE(Parse(
      {"--input", "d", "--constraints", "c", "--subset", "20,banana"},
      &args, &error));
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--subset",
                      "0"},
                     &args, &error));
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--subset",
                      "101"},
                     &args, &error));
}

TEST(CliArgsTest, SubsetAcceptsPercentSuffixes) {
  CliArgs args;
  std::string error;
  ASSERT_TRUE(Parse({"--input", "d", "--constraints", "c", "--subset",
                     "20,40%,100"},
                    &args, &error))
      << error;
  EXPECT_EQ(args.subset_pcts, (std::vector<int>{20, 40, 100}));
}

TEST(CliArgsTest, MissingRequiredFlagsFail) {
  CliArgs args;
  std::string error;
  EXPECT_FALSE(Parse({}, &args, &error));
  EXPECT_NE(error.find("--input"), std::string::npos);
  args = CliArgs();
  EXPECT_FALSE(Parse({"--input", "d.csv"}, &args, &error));
  EXPECT_NE(error.find("--constraints"), std::string::npos);
}

TEST(CliArgsTest, AlgoListNeedsNoInput) {
  CliArgs args;
  std::string error;
  ASSERT_TRUE(Parse({"--algo", "LIST"}, &args, &error)) << error;
  EXPECT_EQ(args.algo, "list");  // normalized
}

TEST(CliArgsTest, SubsetConflictsAreParseErrors) {
  CliArgs args;
  std::string error;
  // --subset + --batch: the sweep needs exactly one constraint spec.
  EXPECT_FALSE(Parse({"--input", "d", "--batch", "b.txt", "--subset", "50"},
                     &args, &error));
  EXPECT_NE(error.find("--subset"), std::string::npos) << error;
  // --subset + --repeat / CSV outputs.
  args = CliArgs();
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--subset",
                      "50", "--repeat", "2"},
                     &args, &error));
  args = CliArgs();
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--subset",
                      "50", "--instances", "out.csv"},
                     &args, &error));
}

TEST(CliArgsTest, ConnectParsesHostPort) {
  CliArgs args;
  std::string error;
  ASSERT_TRUE(Parse({"--input", "d", "--constraints", "c", "--connect",
                     "10.0.0.5:7439"},
                    &args, &error))
      << error;
  EXPECT_TRUE(args.remote);
  EXPECT_EQ(args.host, "10.0.0.5");
  EXPECT_EQ(args.port, 7439);

  args = CliArgs();
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--connect",
                      "nocolon"},
                     &args, &error));
  args = CliArgs();
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--connect",
                      "host:99999"},
                     &args, &error));
  args = CliArgs();
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--connect",
                      "host:"},
                     &args, &error));
}

TEST(CliArgsTest, ControlVerbsRequireConnect) {
  CliArgs args;
  std::string error;
  EXPECT_FALSE(Parse({"--ping"}, &args, &error));
  EXPECT_NE(error.find("--connect"), std::string::npos) << error;
  args = CliArgs();
  EXPECT_FALSE(Parse({"--shutdown"}, &args, &error));
  args = CliArgs();
  EXPECT_FALSE(Parse({"--connect", "h:1", "--ping", "--shutdown"}, &args,
                     &error));
  // With --connect they need no input/constraints.
  args = CliArgs();
  ASSERT_TRUE(Parse({"--connect", "h:1", "--ping"}, &args, &error)) << error;
  EXPECT_TRUE(args.ping);
}

TEST(CliArgsTest, ConnectWithNameNeedsNoInput) {
  // Querying a daemon-preloaded dataset: --name substitutes for --input.
  CliArgs args;
  std::string error;
  ASSERT_TRUE(Parse({"--connect", "h:1", "--name", "foo", "--constraints",
                     "wr:0.5,2.0"},
                    &args, &error))
      << error;
  EXPECT_TRUE(args.input.empty());
  EXPECT_EQ(args.remote_name, "foo");
  // But result CSVs need the local dataset copy.
  args = CliArgs();
  EXPECT_FALSE(Parse({"--connect", "h:1", "--name", "foo", "--constraints",
                      "wr:0.5,2.0", "--instances", "out.csv"},
                     &args, &error));
  EXPECT_NE(error.find("--input"), std::string::npos) << error;
  // Without --name, remote mode still requires --input.
  args = CliArgs();
  EXPECT_FALSE(Parse({"--connect", "h:1", "--constraints", "wr:0.5,2.0"},
                     &args, &error));
  EXPECT_NE(error.find("--input"), std::string::npos) << error;
}

TEST(CliArgsTest, NameRequiresConnect) {
  CliArgs args;
  std::string error;
  EXPECT_FALSE(Parse({"--input", "d", "--constraints", "c", "--name", "x"},
                     &args, &error));
  EXPECT_NE(error.find("--name"), std::string::npos) << error;
  args = CliArgs();
  ASSERT_TRUE(Parse({"--input", "d", "--constraints", "c", "--connect",
                     "h:1", "--name", "x"},
                    &args, &error))
      << error;
  EXPECT_EQ(args.remote_name, "x");
}

}  // namespace
}  // namespace arsp
