// Copyright 2026 The ARSP Authors.

#include "src/geometry/hyperplane.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(HyperplaneTest, HeightAndSignedDistance) {
  // y = 2x - 3  (coef = {2}, offset = 3).
  const Hyperplane h({2.0}, 3.0);
  EXPECT_EQ(h.dim(), 2);
  EXPECT_DOUBLE_EQ(h.HeightAt(Point{5.0, 0.0}), 7.0);
  EXPECT_DOUBLE_EQ(h.SignedDistance(Point{5.0, 7.0}), 0.0);  // on
  EXPECT_GT(h.SignedDistance(Point{5.0, 8.0}), 0.0);         // above
  EXPECT_LT(h.SignedDistance(Point{5.0, 6.0}), 0.0);         // below
  EXPECT_TRUE(h.BelowOrOn(Point{5.0, 7.0}));
  EXPECT_FALSE(h.BelowOrOn(Point{5.0, 7.1}));
}

TEST(HyperplaneTest, DualityRoundTrip) {
  const Point p{1.5, -2.0, 4.0};
  const Hyperplane dual = Hyperplane::DualOfPoint(p);
  EXPECT_EQ(dual.DualPoint(), p);
}

TEST(HyperplaneTest, DualityPreservesAboveBelow) {
  // The classic property: p above h  <=>  h* above p*.
  const Point p{2.0, 5.0};
  const Hyperplane h({1.0}, -1.0);  // y = x + 1; p is above (5 > 3).
  ASSERT_GT(h.SignedDistance(p), 0.0);

  const Point h_star = h.DualPoint();
  const Hyperplane p_star = Hyperplane::DualOfPoint(p);
  // h* above p*: p*.SignedDistance(h*) > 0.
  EXPECT_GT(p_star.SignedDistance(h_star), 0.0);
}

TEST(HyperplaneTest, DualityPreservesIncidence) {
  const Hyperplane h({3.0, -1.0}, 2.0);  // z = 3x - y - 2
  const Point on{1.0, 2.0, h.HeightAt(Point{1.0, 2.0, 0.0})};
  ASSERT_NEAR(h.SignedDistance(on), 0.0, 1e-12);
  const Hyperplane on_star = Hyperplane::DualOfPoint(on);
  EXPECT_NEAR(on_star.SignedDistance(h.DualPoint()), 0.0, 1e-12);
}

TEST(HyperplaneTest, ThreeDimensionalHeight) {
  // z = x + 2y - 5.
  const Hyperplane h({1.0, 2.0}, 5.0);
  EXPECT_DOUBLE_EQ(h.HeightAt(Point{1.0, 2.0, 0.0}), 0.0);
  EXPECT_TRUE(h.BelowOrOn(Point{1.0, 2.0, -0.5}));
}

}  // namespace
}  // namespace arsp
