// Copyright 2026 The ARSP Authors.

#include "src/eclipse/eclipse.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/certain_rskyline.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomWr;

std::vector<Point> RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
    points.push_back(std::move(p));
  }
  return points;
}

TEST(EclipseTest, AllThreeAlgorithmsAgree) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 3);
    const auto points = RandomPoints(400, dim, seed);
    const WeightRatioConstraints wr = RandomWr(dim, seed + 50);
    const std::vector<int> brute = ComputeEclipseBrute(points, wr);
    EXPECT_EQ(brute, ComputeEclipsePairwise(points, wr)) << "seed=" << seed;
    EXPECT_EQ(brute, ComputeEclipseDualS(points, wr)) << "seed=" << seed;
  }
}

TEST(EclipseTest, EclipseSubsetOfSkyline) {
  const auto points = RandomPoints(1000, 3, 3);
  const WeightRatioConstraints wr = RandomWr(3, 7);
  const std::vector<int> eclipse = ComputeEclipseDualS(points, wr);
  const std::vector<int> skyline = ComputeSkyline(points);
  for (int idx : eclipse) {
    EXPECT_TRUE(std::binary_search(skyline.begin(), skyline.end(), idx));
  }
  EXPECT_LE(eclipse.size(), skyline.size());
}

TEST(EclipseTest, WiderRatioRangeYieldsSmallerOrEqualEclipse) {
  // Wider R means weaker dominance per pair... no: wider R makes dominance
  // *harder* (more weights must agree), so the eclipse set grows with the
  // range and shrinks as the range narrows (Fig. 8c's q sensitivity).
  const auto points = RandomPoints(600, 2, 11);
  const auto narrow = WeightRatioConstraints::Create({{0.84, 1.19}}).value();
  const auto wide = WeightRatioConstraints::Create({{0.18, 5.67}}).value();
  const size_t narrow_size = ComputeEclipseDualS(points, narrow).size();
  const size_t wide_size = ComputeEclipseDualS(points, wide).size();
  EXPECT_LE(narrow_size, wide_size);
}

TEST(EclipseTest, DuplicatePointsEliminateEachOther) {
  std::vector<Point> points = {{0.2, 0.8}, {0.2, 0.8}, {0.9, 0.1}};
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const std::vector<int> eclipse = ComputeEclipseDualS(points, wr);
  EXPECT_EQ(eclipse, ComputeEclipseBrute(points, wr));
  EXPECT_EQ(std::count(eclipse.begin(), eclipse.end(), 0), 0);
  EXPECT_EQ(std::count(eclipse.begin(), eclipse.end(), 1), 0);
}

TEST(EclipseTest, SinglePointIsItsOwnEclipse) {
  const std::vector<Point> points = {{0.4, 0.6}};
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  EXPECT_EQ(ComputeEclipseDualS(points, wr), (std::vector<int>{0}));
}

TEST(EclipseTest, DegenerateRatioPointActsLikeSingleWeight) {
  // l = h collapses F to a single scoring function: the eclipse is the set
  // of minimum-score points under that weight.
  const auto points = RandomPoints(300, 2, 17);
  const auto wr = WeightRatioConstraints::Create({{1.0, 1.0}}).value();
  const std::vector<int> eclipse = ComputeEclipseBrute(points, wr);
  double best = 1e100;
  for (const Point& p : points) best = std::min(best, p[0] + p[1]);
  for (int idx : eclipse) {
    EXPECT_NEAR(points[static_cast<size_t>(idx)][0] +
                    points[static_cast<size_t>(idx)][1],
                best, 1e-12);
  }
  EXPECT_EQ(ComputeEclipseDualS(points, wr), eclipse);
}

TEST(EclipseTest, HigherDimensions) {
  const auto points = RandomPoints(300, 5, 23);
  const WeightRatioConstraints wr = RandomWr(5, 29);
  EXPECT_EQ(ComputeEclipseBrute(points, wr),
            ComputeEclipseDualS(points, wr));
}

TEST(EclipseTest, PreparedIndexAnswersManyQueries) {
  const auto points = RandomPoints(800, 3, 31);
  const DualSEclipseIndex index(points);
  EXPECT_GT(index.skyline_size(), 0);
  for (uint64_t q = 0; q < 6; ++q) {
    const WeightRatioConstraints wr = RandomWr(3, 100 + q);
    EXPECT_EQ(index.Query(wr), ComputeEclipseBrute(points, wr)) << q;
  }
}

TEST(EclipseTest, PreparedIndexIsMovable) {
  const auto points = RandomPoints(100, 2, 37);
  DualSEclipseIndex index(points);
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const std::vector<int> before = index.Query(wr);
  DualSEclipseIndex moved = std::move(index);
  EXPECT_EQ(moved.Query(wr), before);
}

}  // namespace
}  // namespace arsp
