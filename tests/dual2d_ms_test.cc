// Copyright 2026 The ARSP Authors.
//
// Tests for the specialized d = 2 DUAL-MS angular structure (§V-D).

#include <gtest/gtest.h>

#include "src/core/dual2d_ms.h"
#include "src/core/loop_algorithm.h"
#include "src/uncertain/generators.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

TEST(Dual2dMsTest, RejectsNon2dDatasets) {
  const UncertainDataset dataset = testing_util::RandomDataset(5, 1, 3, 1.0, 1);
  const auto built = Dual2dMs::Build(dataset);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(Dual2dMsTest, RejectsMultiInstanceObjects) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.1, 0.2}, Point{0.3, 0.4}}, {0.5, 0.5});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const auto built = Dual2dMs::Build(*dataset);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kUnimplemented);
}

TEST(Dual2dMsTest, RejectsOversizedIndex) {
  const UncertainDataset iip = GenerateIipLike(200, 1);
  const auto built = Dual2dMs::Build(iip, /*max_memory_bytes=*/1024);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Dual2dMsTest, MatchesLoopOnIipLikeData) {
  const UncertainDataset iip = GenerateIipLike(150, 7);
  const auto built = Dual2dMs::Build(iip);
  ASSERT_TRUE(built.ok());
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {1.0, 1.0}, {0.18, 5.67}, {0.84, 1.19}}) {
    const auto wr = WeightRatioConstraints::Create({{lo, hi}}).value();
    const ArspResult expected =
        ComputeArspLoop(iip, PreferenceRegion::FromWeightRatios(wr));
    const ArspResult got = built->Query(lo, hi);
    EXPECT_LT(MaxAbsDiff(expected, got), 1e-9) << "[" << lo << "," << hi << "]";
  }
}

TEST(Dual2dMsTest, OneBuildServesManyRanges) {
  // The point of the preprocessing: one build answers every ratio range.
  const UncertainDataset iip = GenerateIipLike(80, 9);
  const auto built = Dual2dMs::Build(iip);
  ASSERT_TRUE(built.ok());
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const double lo = rng.Uniform(0.05, 2.0);
    const double hi = lo + rng.Uniform(0.0, 4.0);
    const auto wr = WeightRatioConstraints::Create({{lo, hi}}).value();
    const ArspResult expected =
        ComputeArspLoop(iip, PreferenceRegion::FromWeightRatios(wr));
    EXPECT_LT(MaxAbsDiff(expected, built->Query(lo, hi)), 1e-9)
        << lo << " " << hi;
  }
}

TEST(Dual2dMsTest, HandlesCertainDominators) {
  // An object with p = 1 inside the angular range forces exact zero via the
  // zero-count prefix path (no underflow guessing).
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.1, 0.1}, 1.0);
  builder.AddSingleton(Point{0.9, 0.9}, 0.7);
  builder.AddSingleton(Point{0.05, 0.95}, 0.5);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const auto built = Dual2dMs::Build(*dataset);
  ASSERT_TRUE(built.ok());
  const ArspResult result = built->Query(0.5, 2.0);
  EXPECT_NEAR(result.instance_probs[0], 1.0, 1e-12);
  EXPECT_EQ(result.instance_probs[1], 0.0);  // dominated by the certain one
}

TEST(Dual2dMsTest, DuplicateCoordinates) {
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.4, 0.4}, 0.5);
  builder.AddSingleton(Point{0.4, 0.4}, 0.25);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const auto built = Dual2dMs::Build(*dataset);
  ASSERT_TRUE(built.ok());
  const ArspResult result = built->Query(0.9, 1.1);
  EXPECT_NEAR(result.instance_probs[0], 0.5 * 0.75, 1e-12);
  EXPECT_NEAR(result.instance_probs[1], 0.25 * 0.5, 1e-12);
}

TEST(Dual2dMsTest, MemoryAccounting) {
  const UncertainDataset iip = GenerateIipLike(64, 2);
  const auto built = Dual2dMs::Build(iip);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->MemoryBytes(), 0u);
  EXPECT_LE(built->MemoryBytes(), Dual2dMs::EstimateMemoryBytes(64) * 2);
}

}  // namespace
}  // namespace arsp
