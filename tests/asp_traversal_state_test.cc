// Copyright 2026 The ARSP Authors.
//
// Unit tests for the incremental (σ, β, χ) bookkeeping shared by the
// kd/quad/multi-way traversals: β must always equal the direct product
// Π_{σ[j]≠1}(1 − σ[j]), χ must count full objects, and Undo must restore
// the state *bitwise* (snapshot-based undo) under randomized add/undo
// sequences — including masses crossing the σ = 1 boundary.

#include "src/core/asp_traversal_state.h"

#include <cmath>
#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace arsp {
namespace {

using internal::AspTraversalState;

// Direct recomputation of β and χ from raw σ values.
void Recompute(const std::vector<double>& sigma, double* beta, int* chi) {
  *beta = 1.0;
  *chi = 0;
  for (double s : sigma) {
    if (s >= 1.0 - kProbabilityEps) {
      ++*chi;
    } else {
      *beta *= (1.0 - s);
    }
  }
}

TEST(AspTraversalStateTest, FreshState) {
  AspTraversalState state(4);
  EXPECT_DOUBLE_EQ(state.beta(), 1.0);
  EXPECT_EQ(state.chi(), 0);
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(state.sigma(j), 0.0);
    EXPECT_FALSE(state.IsFull(j));
  }
}

TEST(AspTraversalStateTest, SingleAddUpdatesBeta) {
  AspTraversalState state(2);
  std::vector<AspTraversalState::Change> log;
  state.Add(0, 0.25, &log);
  EXPECT_DOUBLE_EQ(state.sigma(0), 0.25);
  EXPECT_DOUBLE_EQ(state.beta(), 0.75);
  EXPECT_EQ(state.chi(), 0);
  state.Undo(log);
  EXPECT_DOUBLE_EQ(state.beta(), 1.0);
  EXPECT_DOUBLE_EQ(state.sigma(0), 0.0);
}

TEST(AspTraversalStateTest, CrossingFullBoundaryMovesFactorToChi) {
  AspTraversalState state(2);
  std::vector<AspTraversalState::Change> log;
  state.Add(0, 0.6, &log);
  state.Add(1, 0.5, &log);
  EXPECT_NEAR(state.beta(), 0.4 * 0.5, 1e-15);
  state.Add(0, 0.4, &log);  // σ[0] -> 1: its factor leaves β
  EXPECT_EQ(state.chi(), 1);
  EXPECT_TRUE(state.IsFull(0));
  EXPECT_NEAR(state.beta(), 0.5, 1e-12);
  state.Undo(log);
  EXPECT_EQ(state.chi(), 0);
  EXPECT_NEAR(state.beta(), 1.0, 1e-12);
}

TEST(AspTraversalStateTest, AddingBeyondFullDoesNotDoubleCountChi) {
  // Same object keeps receiving mass after σ = 1 within tolerance (can
  // happen when the remaining mass is epsilon-sized).
  AspTraversalState state(1);
  std::vector<AspTraversalState::Change> log;
  state.Add(0, 1.0 - 1e-12, &log);
  EXPECT_EQ(state.chi(), 1);
  state.Add(0, 1e-12, &log);
  EXPECT_EQ(state.chi(), 1);
  state.Undo(log);
  EXPECT_EQ(state.chi(), 0);
  EXPECT_NEAR(state.beta(), 1.0, 1e-9);
}

TEST(AspTraversalStateTest, LeafProbabilityRules) {
  AspTraversalState state(3);
  std::vector<AspTraversalState::Change> log;
  // χ = 0: own factor divided out.
  state.Add(0, 0.5, &log);  // own object
  state.Add(1, 0.25, &log);
  // Pr = β · p / (1 - σ[own]) = (0.5 · 0.75) · 0.5 / 0.5 = 0.375.
  EXPECT_NEAR(state.LeafProbability(0, 0.5), 0.375, 1e-12);

  // χ = 1 via the own object: Pr = β · p.
  state.Add(0, 0.5, &log);  // σ[0] = 1
  EXPECT_EQ(state.chi(), 1);
  EXPECT_NEAR(state.LeafProbability(0, 0.5), 0.75 * 0.5, 1e-12);
  // χ = 1 via a *foreign* full object: zero.
  EXPECT_EQ(state.LeafProbability(2, 0.5), 0.0);

  // χ = 2: always zero.
  state.Add(1, 0.75, &log);
  EXPECT_EQ(state.chi(), 2);
  EXPECT_EQ(state.LeafProbability(0, 0.5), 0.0);
  state.Undo(log);
}

TEST(AspTraversalStateTest, RandomizedAddUndoMatchesRecomputation) {
  Rng rng(17);
  const int m = 12;
  AspTraversalState state(m);
  std::vector<double> sigma(static_cast<size_t>(m), 0.0);

  for (int round = 0; round < 200; ++round) {
    // A batch of adds (like one node's dominating set)...
    std::vector<AspTraversalState::Change> log;
    const int adds = rng.UniformInt(1, 6);
    for (int a = 0; a < adds; ++a) {
      const int j = rng.UniformInt(0, m - 1);
      const double room = 1.0 - sigma[static_cast<size_t>(j)];
      if (room <= 0.0) continue;
      // Occasionally exhaust the remaining mass exactly.
      const double p =
          rng.Bernoulli(0.2) ? room : rng.Uniform(0.0, room) * 0.9 + 1e-6;
      state.Add(j, p, &log);
      sigma[static_cast<size_t>(j)] += p;
    }
    double beta_expected;
    int chi_expected;
    Recompute(sigma, &beta_expected, &chi_expected);
    EXPECT_EQ(state.chi(), chi_expected) << "round " << round;
    EXPECT_NEAR(state.beta(), beta_expected, 1e-9 + 1e-9 * beta_expected)
        << "round " << round;

    // ...then either keep it (descend) or undo it (backtrack). Undo is
    // snapshot-based, so the restore must be bitwise, not merely close.
    if (rng.Bernoulli(0.5)) {
      const double beta_before = log.empty() ? state.beta()
                                             : log.front().old_beta;
      const int chi_before = log.empty() ? state.chi() : log.front().old_chi;
      for (auto it = log.rbegin(); it != log.rend(); ++it) {
        sigma[static_cast<size_t>(it->object)] = it->old_sigma;
      }
      state.Undo(log);
      EXPECT_EQ(state.beta(), beta_before);
      EXPECT_EQ(state.chi(), chi_before);
      for (int j = 0; j < m; ++j) {
        EXPECT_EQ(state.sigma(j), sigma[static_cast<size_t>(j)]);
      }
    }
  }
}

TEST(AspTraversalStateTest, UndoRestoresBitwise) {
  // Enter-and-exit a "subtree" must leave (σ, β, χ) bit-identical to never
  // entering — the exactness goal pruning and scoped (sharded) solves rely
  // on for bit-identical answers.
  AspTraversalState state(4);
  std::vector<AspTraversalState::Change> path;
  state.Add(0, 0.3, &path);
  state.Add(1, 0.7, &path);
  const double beta_at_node = state.beta();
  const int chi_at_node = state.chi();
  const double sigma0 = state.sigma(0);
  const double sigma1 = state.sigma(1);

  std::vector<AspTraversalState::Change> subtree;
  state.Add(2, 0.9999999, &subtree);
  state.Add(0, 0.1, &subtree);
  state.Add(3, 1.0, &subtree);  // crosses the full boundary
  state.Undo(subtree);

  EXPECT_EQ(state.beta(), beta_at_node);
  EXPECT_EQ(state.chi(), chi_at_node);
  EXPECT_EQ(state.sigma(0), sigma0);
  EXPECT_EQ(state.sigma(1), sigma1);
  EXPECT_EQ(state.sigma(2), 0.0);
  EXPECT_EQ(state.sigma(3), 0.0);
}

}  // namespace
}  // namespace arsp
