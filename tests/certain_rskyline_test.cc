// Copyright 2026 The ARSP Authors.

#include "src/core/certain_rskyline.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::WrRegion;

std::vector<Point> RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<int> BruteSkyline(const std::vector<Point>& points) {
  std::vector<int> out;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = (j != i) && DominatesStrict(points[j], points[i]);
    }
    if (!dominated) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> BruteRskyline(const std::vector<Point>& points,
                               const PreferenceRegion& region) {
  std::vector<int> out;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = (j != i) &&
                  FDominatesVertex(points[j], points[i], region.vertices());
    }
    if (!dominated) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(CertainSkylineTest, MatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const auto points = RandomPoints(200, 2 + static_cast<int>(seed % 3), seed);
    EXPECT_EQ(ComputeSkyline(points), BruteSkyline(points)) << seed;
  }
}

TEST(CertainSkylineTest, DuplicatesBothSurviveStrictSkyline) {
  const std::vector<Point> points = {{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}};
  EXPECT_EQ(ComputeSkyline(points), (std::vector<int>{0, 1}));
}

TEST(CertainRskylineTest, MatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 3);
    const auto points = RandomPoints(200, dim, seed + 10);
    const PreferenceRegion region = WrRegion(dim, dim - 1);
    EXPECT_EQ(ComputeRskyline(points, region), BruteRskyline(points, region))
        << seed;
  }
}

TEST(CertainRskylineTest, RskylineSubsetOfSkyline) {
  // The paper's §I: rskyline results are usually smaller than skylines, and
  // always a subset (F-dominance extends coordinate dominance).
  const auto points = RandomPoints(500, 3, 42);
  const PreferenceRegion region = WrRegion(3, 2);
  const std::vector<int> sky = ComputeSkyline(points);
  const std::vector<int> rsky = ComputeRskyline(points, region);
  EXPECT_LE(rsky.size(), sky.size());
  for (int idx : rsky) {
    EXPECT_TRUE(std::binary_search(sky.begin(), sky.end(), idx)) << idx;
  }
}

TEST(CertainRskylineTest, DuplicatesEliminateEachOther) {
  const std::vector<Point> points = {{0.5, 0.5}, {0.5, 0.5}, {0.1, 0.9}};
  const PreferenceRegion region = WrRegion(2, 1);
  const std::vector<int> rsky = ComputeRskyline(points, region);
  EXPECT_EQ(std::count(rsky.begin(), rsky.end(), 0), 0);
  EXPECT_EQ(std::count(rsky.begin(), rsky.end(), 1), 0);
}

TEST(CertainRskylineTest, FullSimplexEqualsWeakSkyline) {
  // With F = all linear functions, rskyline = skyline up to duplicate
  // handling; on duplicate-free data they coincide exactly.
  const auto points = RandomPoints(300, 3, 99);
  const PreferenceRegion region = PreferenceRegion::FullSimplex(3);
  EXPECT_EQ(ComputeRskyline(points, region), ComputeSkyline(points));
}

}  // namespace
}  // namespace arsp
