// Copyright 2026 The ARSP Authors.
//
// DatasetView unit tests: spec validation, accessor correctness against the
// base, id remapping in both directions, recomputed bounds, possible-world
// counts, cache keys, and Materialize (the explicit-copy escape hatch the
// zero-copy plane is measured against).

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "src/uncertain/dataset_view.h"
#include "src/uncertain/generators.h"
#include "src/uncertain/possible_worlds.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;

TEST(ViewSpecTest, CacheKeysDistinguishSpecs) {
  EXPECT_EQ(ViewSpec::Full().CacheKey(), "full");
  EXPECT_EQ(ViewSpec::Prefix(7).CacheKey(), "prefix:7");
  EXPECT_EQ(ViewSpec::Subset({3, 1, 2}).CacheKey(), "subset:1,2,3,");
  EXPECT_NE(ViewSpec::Prefix(7).CacheKey(), ViewSpec::Prefix(8).CacheKey());
  // Subset() sorts and dedups, so permutations share one key.
  EXPECT_EQ(ViewSpec::Subset({2, 1, 1}).CacheKey(),
            ViewSpec::Subset({1, 2}).CacheKey());
}

TEST(DatasetViewTest, FullViewMirrorsTheBase) {
  const UncertainDataset dataset = RandomDataset(12, 3, 3, 0.3, 11);
  const DatasetView view(dataset);
  EXPECT_TRUE(view.is_full());
  EXPECT_TRUE(view.is_prefix());
  EXPECT_EQ(view.num_objects(), dataset.num_objects());
  EXPECT_EQ(view.num_instances(), dataset.num_instances());
  EXPECT_EQ(view.dim(), dataset.dim());
  EXPECT_EQ(view.id_bound(), dataset.num_instances());
  for (int i = 0; i < view.num_instances(); ++i) {
    // Zero-copy: the view's coords are the base's columnar storage rows.
    EXPECT_EQ(view.coords(i), dataset.coords(i));
    EXPECT_EQ(view.point(i), dataset.instance(i).point);
    EXPECT_EQ(view.prob(i), dataset.instance(i).prob);
    EXPECT_EQ(view.object_of(i), dataset.instance(i).object_id);
    EXPECT_EQ(view.base_instance_id(i), i);
    EXPECT_EQ(view.LocalInstanceOf(i), i);
  }
  EXPECT_EQ(view.bounds().min_corner(), dataset.bounds().min_corner());
  EXPECT_EQ(view.bounds().max_corner(), dataset.bounds().max_corner());
  EXPECT_DOUBLE_EQ(view.NumPossibleWorlds(), dataset.NumPossibleWorlds());
}

TEST(DatasetViewTest, PrefixViewMatchesTakeObjects) {
  const UncertainDataset dataset = RandomDataset(15, 4, 2, 0.4, 12);
  for (int count : {1, 5, 15}) {
    auto view = DatasetView::Create(dataset, ViewSpec::Prefix(count));
    ASSERT_TRUE(view.ok());
    const UncertainDataset copy = TakeObjects(dataset, count);
    EXPECT_EQ(view->num_objects(), copy.num_objects());
    EXPECT_EQ(view->num_instances(), copy.num_instances());
    EXPECT_EQ(view->id_bound(), view->num_instances());
    for (int j = 0; j < copy.num_objects(); ++j) {
      EXPECT_EQ(view->object_range(j), copy.object_range(j));
      EXPECT_DOUBLE_EQ(view->object_prob(j), copy.object_prob(j));
      EXPECT_EQ(view->base_object_id(j), j);
    }
    for (int i = 0; i < copy.num_instances(); ++i) {
      EXPECT_EQ(view->point(i), copy.instance(i).point);
      EXPECT_EQ(view->prob(i), copy.instance(i).prob);
      EXPECT_EQ(view->object_of(i), copy.instance(i).object_id);
    }
    EXPECT_EQ(view->bounds().min_corner(), copy.bounds().min_corner());
    EXPECT_EQ(view->bounds().max_corner(), copy.bounds().max_corner());
    EXPECT_DOUBLE_EQ(view->NumPossibleWorlds(), copy.NumPossibleWorlds());
    // Out-of-prefix base instances do not map into the view.
    if (view->num_instances() < dataset.num_instances()) {
      EXPECT_EQ(view->LocalInstanceOf(view->num_instances()), -1);
    }
  }
}

TEST(DatasetViewTest, SubsetViewRemapsIds) {
  const UncertainDataset dataset = RandomDataset(10, 3, 2, 0.0, 13);
  const std::vector<int> picked = {7, 2, 4};  // Subset() sorts to {2, 4, 7}
  auto view = DatasetView::Create(dataset, ViewSpec::Subset(picked));
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->is_prefix());
  EXPECT_EQ(view->num_objects(), 3);
  const int expected[] = {2, 4, 7};
  int local_instance = 0;
  for (int local_j = 0; local_j < 3; ++local_j) {
    const int base_j = expected[local_j];
    EXPECT_EQ(view->base_object_id(local_j), base_j);
    EXPECT_EQ(view->object_size(local_j), dataset.object_size(base_j));
    EXPECT_DOUBLE_EQ(view->object_prob(local_j), dataset.object_prob(base_j));
    const auto [begin, end] = dataset.object_range(base_j);
    for (int i = begin; i < end; ++i, ++local_instance) {
      EXPECT_EQ(view->base_instance_id(local_instance), i);
      EXPECT_EQ(view->LocalInstanceOf(i), local_instance);
      EXPECT_EQ(view->coords(local_instance), dataset.coords(i));
      EXPECT_EQ(view->object_of(local_instance), local_j);
    }
  }
  EXPECT_EQ(view->num_instances(), local_instance);
  // Bound is the max member base id + 1 (tight enough to prune suffixes).
  EXPECT_EQ(view->id_bound(), dataset.object_range(7).second);
  // Non-member instances map to -1.
  const auto [b0, e0] = dataset.object_range(0);
  for (int i = b0; i < e0; ++i) EXPECT_EQ(view->LocalInstanceOf(i), -1);
}

TEST(DatasetViewTest, HandBuiltUnsortedSubsetSpecsAreNormalized) {
  // ViewSpec members are public; Create must enforce the sorted/unique
  // invariant itself — an unsorted or duplicated id list would otherwise
  // corrupt id_bound and the id tables (silently wrong probabilities).
  const UncertainDataset dataset = RandomDataset(10, 2, 2, 0.0, 19);
  ViewSpec hand_built;
  hand_built.kind = ViewSpec::Kind::kSubset;
  hand_built.objects = {7, 3, 7, 1};  // unsorted, duplicated
  auto view = DatasetView::Create(dataset, hand_built);
  ASSERT_TRUE(view.ok());
  auto canonical = DatasetView::Create(dataset, ViewSpec::Subset({1, 3, 7}));
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(view->num_objects(), 3);
  EXPECT_EQ(view->num_instances(), canonical->num_instances());
  EXPECT_EQ(view->id_bound(), canonical->id_bound());
  EXPECT_EQ(view->spec().objects, canonical->spec().objects);
  for (int i = 0; i < view->num_instances(); ++i) {
    EXPECT_EQ(view->base_instance_id(i), canonical->base_instance_id(i));
    EXPECT_EQ(view->object_of(i), canonical->object_of(i));
  }
}

TEST(DatasetViewTest, MaterializeEqualsView) {
  const UncertainDataset dataset = RandomDataset(9, 4, 3, 0.5, 14);
  auto view = DatasetView::Create(dataset, ViewSpec::Subset({0, 3, 8}));
  ASSERT_TRUE(view.ok());
  const UncertainDataset copy = view->Materialize();
  ASSERT_EQ(copy.num_objects(), view->num_objects());
  ASSERT_EQ(copy.num_instances(), view->num_instances());
  for (int i = 0; i < copy.num_instances(); ++i) {
    EXPECT_EQ(copy.instance(i).point, view->point(i));
    EXPECT_EQ(copy.instance(i).prob, view->prob(i));
    EXPECT_EQ(copy.instance(i).object_id, view->object_of(i));
  }
  EXPECT_EQ(copy.bounds().min_corner(), view->bounds().min_corner());
  EXPECT_EQ(copy.bounds().max_corner(), view->bounds().max_corner());
}

TEST(DatasetViewTest, InvalidSpecsAreRejected) {
  const UncertainDataset dataset = RandomDataset(5, 2, 2, 0.0, 15);
  EXPECT_FALSE(DatasetView::Create(dataset, ViewSpec::Prefix(-1)).ok());
  EXPECT_FALSE(DatasetView::Create(dataset, ViewSpec::Prefix(6)).ok());
  EXPECT_FALSE(DatasetView::Create(dataset, ViewSpec::Subset({0, 5})).ok());
  EXPECT_FALSE(DatasetView::Create(dataset, ViewSpec::Subset({-1})).ok());
  EXPECT_TRUE(DatasetView::Create(dataset, ViewSpec::Prefix(0)).ok());
  EXPECT_TRUE(DatasetView::Create(dataset, ViewSpec::Subset({})).ok());
}

TEST(DatasetViewTest, EmptyViewBehaves) {
  const UncertainDataset dataset = RandomDataset(5, 2, 2, 0.0, 16);
  auto view = DatasetView::Create(dataset, ViewSpec::Prefix(0));
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_objects(), 0);
  EXPECT_EQ(view->num_instances(), 0);
  EXPECT_EQ(view->id_bound(), 0);
  EXPECT_EQ(view->LocalInstanceOf(0), -1);
  EXPECT_DOUBLE_EQ(view->NumPossibleWorlds(), 1.0);
  EXPECT_TRUE(view->single_instance_objects());
}

TEST(DatasetViewTest, SharedOwnershipKeepsTheBaseAlive) {
  auto owned = std::make_shared<const UncertainDataset>(
      RandomDataset(6, 2, 2, 0.0, 17));
  const UncertainDataset* raw = owned.get();
  auto view = DatasetView::Create(owned, ViewSpec::Prefix(3));
  ASSERT_TRUE(view.ok());
  owned.reset();  // the view keeps the dataset alive
  EXPECT_EQ(&view->base(), raw);
  EXPECT_GT(view->num_instances(), 0);
  EXPECT_EQ(view->point(0).dim(), 2);
}

TEST(DatasetViewTest, PossibleWorldEnumerationMatchesMaterializedCopy) {
  const UncertainDataset dataset = RandomDataset(5, 2, 2, 0.6, 18);
  auto view = DatasetView::Create(dataset, ViewSpec::Subset({1, 2, 4}));
  ASSERT_TRUE(view.ok());
  const UncertainDataset copy = view->Materialize();
  std::vector<PossibleWorld> from_view;
  std::vector<PossibleWorld> from_copy;
  ForEachPossibleWorld(*view,
                       [&](const PossibleWorld& w) { from_view.push_back(w); });
  ForEachPossibleWorld(copy,
                       [&](const PossibleWorld& w) { from_copy.push_back(w); });
  ASSERT_EQ(from_view.size(), from_copy.size());
  for (size_t w = 0; w < from_view.size(); ++w) {
    EXPECT_EQ(from_view[w].choice, from_copy[w].choice);
    EXPECT_DOUBLE_EQ(from_view[w].prob, from_copy[w].prob);
  }
}

}  // namespace
}  // namespace arsp
