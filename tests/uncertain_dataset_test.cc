// Copyright 2026 The ARSP Authors.

#include "src/uncertain/uncertain_dataset.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(UncertainDatasetTest, BuildAndAccess) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{1.0, 2.0}, Point{3.0, 4.0}}, {0.5, 0.5});
  builder.AddSingleton(Point{0.0, 0.0}, 0.7);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->dim(), 2);
  EXPECT_EQ(dataset->num_objects(), 2);
  EXPECT_EQ(dataset->num_instances(), 3);
  EXPECT_EQ(dataset->object_size(0), 2);
  EXPECT_EQ(dataset->object_size(1), 1);
  EXPECT_DOUBLE_EQ(dataset->object_prob(0), 1.0);
  EXPECT_DOUBLE_EQ(dataset->object_prob(1), 0.7);
  EXPECT_EQ(dataset->instance(2).object_id, 1);
  EXPECT_EQ(dataset->instance(2).instance_id, 2);
}

TEST(UncertainDatasetTest, InstancesAreContiguousPerObject) {
  UncertainDatasetBuilder builder(1);
  builder.AddObject({Point{1.0}, Point{2.0}, Point{3.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{4.0}, Point{5.0}}, {0.5, 0.5});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->object_range(0), std::make_pair(0, 3));
  EXPECT_EQ(dataset->object_range(1), std::make_pair(3, 5));
  for (int i = 0; i < dataset->num_instances(); ++i) {
    EXPECT_EQ(dataset->instance(i).instance_id, i);
  }
}

TEST(UncertainDatasetTest, RejectsBadProbabilities) {
  {
    UncertainDatasetBuilder builder(1);
    builder.AddObject({Point{1.0}}, {0.0});  // zero probability
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    UncertainDatasetBuilder builder(1);
    builder.AddObject({Point{1.0}}, {1.5});  // above 1
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    UncertainDatasetBuilder builder(1);
    builder.AddObject({Point{1.0}, Point{2.0}}, {0.7, 0.7});  // sum > 1
    EXPECT_FALSE(builder.Build().ok());
  }
}

TEST(UncertainDatasetTest, RejectsDimensionMismatch) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{1.0}}, {1.0});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(UncertainDatasetTest, RejectsMismatchedCounts) {
  UncertainDatasetBuilder builder(1);
  builder.AddObject({Point{1.0}, Point{2.0}}, {1.0});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(UncertainDatasetTest, RejectsEmptyObject) {
  UncertainDatasetBuilder builder(1);
  builder.AddObject({}, {});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(UncertainDatasetTest, ToleratesRoundingToOne) {
  // Three instances of 1/3 each sum to slightly less/more than 1 in floating
  // point; the builder must accept this and clamp.
  UncertainDatasetBuilder builder(1);
  builder.AddObject({Point{1.0}, Point{2.0}, Point{3.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_LE(dataset->object_prob(0), 1.0);
}

TEST(UncertainDatasetTest, BoundsCoverAllInstances) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{1.0, 5.0}, Point{3.0, 2.0}}, {0.4, 0.4});
  builder.AddSingleton(Point{-1.0, 7.0}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->bounds().min_corner(), (Point{-1.0, 2.0}));
  EXPECT_EQ(dataset->bounds().max_corner(), (Point{3.0, 7.0}));
}

TEST(UncertainDatasetTest, PossibleWorldCount) {
  UncertainDatasetBuilder builder(1);
  builder.AddObject({Point{1.0}, Point{2.0}}, {0.5, 0.5});  // 2 choices
  builder.AddSingleton(Point{3.0}, 0.5);                    // 2 (may vanish)
  builder.AddSingleton(Point{4.0}, 1.0);                    // 1
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_DOUBLE_EQ(dataset->NumPossibleWorlds(), 4.0);
}

}  // namespace
}  // namespace arsp
