// Copyright 2026 The ARSP Authors.
//
// Tests for the ArspEngine session API: request validation, result-cache
// correctness (a cached answer must be bit-identical to a fresh solve),
// batch-vs-serial equivalence, "auto" solver selection respecting
// capability flags, context pooling, and concurrent SolveBatch against
// shared pooled contexts (lazy-init is exercised from many threads — the
// CI "tsan" job runs this binary under ThreadSanitizer).

#include "src/core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/queries.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::Example1Dataset;
using testing_util::Example1Wr;
using testing_util::RandomDataset;
using testing_util::RandomWr;
using testing_util::WrRegion;

QueryRequest WrRequest(DatasetHandle handle, int dim, uint64_t seed,
                       const std::string& solver = "auto") {
  QueryRequest request;
  request.dataset = handle;
  request.constraints = ConstraintSpec::WeightRatios(RandomWr(dim, seed));
  request.solver = solver;
  return request;
}

TEST(ArspEngineTest, SolveRejectsBadRequests) {
  ArspEngine engine;
  QueryRequest request;  // no dataset, no constraints
  request.constraints = ConstraintSpec::WeightRatios(Example1Wr());
  auto no_dataset = engine.Solve(request);
  ASSERT_FALSE(no_dataset.ok());
  EXPECT_EQ(no_dataset.status().code(), StatusCode::kNotFound);

  const DatasetHandle handle = engine.AddDataset(Example1Dataset());
  QueryRequest no_constraints;
  no_constraints.dataset = handle;
  auto missing = engine.Solve(no_constraints);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  QueryRequest bad_derived = WrRequest(handle, 2, 7);
  bad_derived.derived.kind = DerivedKind::kCountControlled;
  bad_derived.derived.max_objects = 0;
  auto derived = engine.Solve(bad_derived);
  ASSERT_FALSE(derived.ok());
  EXPECT_EQ(derived.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArspEngineTest, CachedResultIsIdenticalToFreshSolve) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(25, 3, 3, 0.3, 11));

  const QueryRequest request = WrRequest(handle, 3, 11, "kdtt+");
  auto first = engine.Solve(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);

  auto second = engine.Solve(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // The cached answer is the same shared result object.
  EXPECT_EQ(second->result.get(), first->result.get());
  EXPECT_EQ(second->solver, "kdtt+");

  // And it matches a fresh, cache-bypassing solve exactly.
  QueryRequest fresh = request;
  fresh.use_cache = false;
  fresh.pool_context = false;
  auto uncached = engine.Solve(fresh);
  ASSERT_TRUE(uncached.ok());
  EXPECT_FALSE(uncached->cache_hit);
  EXPECT_EQ(MaxAbsDiff(*uncached->result, *first->result), 0.0);

  const ArspEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);  // the bypassing request never touched it
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ArspEngineTest, CacheDiscriminatesSolverOptionsAndConstraints) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(20, 3, 3, 0.0, 12));

  ASSERT_TRUE(engine.Solve(WrRequest(handle, 3, 12, "kdtt+")).ok());
  // Different solver, options, or constraints: all misses.
  auto other_solver = engine.Solve(WrRequest(handle, 3, 12, "bnb"));
  ASSERT_TRUE(other_solver.ok());
  EXPECT_FALSE(other_solver->cache_hit);

  QueryRequest with_options = WrRequest(handle, 3, 12, "mwtt");
  with_options.options.SetInt("fanout", 4);
  auto a = engine.Solve(with_options);
  with_options.options.SetInt("fanout", 8);
  auto b = engine.Solve(with_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->cache_hit);

  auto other_constraints = engine.Solve(WrRequest(handle, 3, 99, "kdtt+"));
  ASSERT_TRUE(other_constraints.ok());
  EXPECT_FALSE(other_constraints->cache_hit);
  EXPECT_EQ(engine.cache_stats().hits, 0);
}

TEST(ArspEngineTest, LruEvictsLeastRecentlyUsed) {
  EngineOptions options;
  options.result_cache_capacity = 2;
  ArspEngine engine(options);
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(10, 2, 2, 0.0, 13));

  const QueryRequest r1 = WrRequest(handle, 2, 1, "loop");
  const QueryRequest r2 = WrRequest(handle, 2, 2, "loop");
  const QueryRequest r3 = WrRequest(handle, 2, 3, "loop");
  ASSERT_TRUE(engine.Solve(r1).ok());
  ASSERT_TRUE(engine.Solve(r2).ok());
  ASSERT_TRUE(engine.Solve(r1).ok());  // refresh r1; r2 is now LRU
  ASSERT_TRUE(engine.Solve(r3).ok());  // evicts r2
  EXPECT_TRUE(engine.Solve(r1)->cache_hit);
  EXPECT_FALSE(engine.Solve(r2)->cache_hit);
  EXPECT_EQ(engine.cache_stats().entries, 2u);
}

TEST(ArspEngineTest, ContextPoolReusesPreprocessing) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(20, 3, 3, 0.0, 14));

  QueryRequest request = WrRequest(handle, 3, 14, "kdtt+");
  request.use_cache = false;
  auto first = engine.Solve(request);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->stats.setup_millis, 0.0);
  EXPECT_EQ(engine.pooled_contexts(), 1u);

  // Same constraints, different solver: same pooled context, zero setup.
  request.solver = "qdtt+";
  auto second = engine.Solve(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.setup_millis, 0.0);
  EXPECT_EQ(engine.pooled_contexts(), 1u);

  ASSERT_TRUE(engine.DropDataset(handle).ok());
  EXPECT_EQ(engine.pooled_contexts(), 0u);
  EXPECT_FALSE(engine.Solve(request).ok());
  EXPECT_FALSE(engine.DropDataset(handle).ok());
}

TEST(ArspEngineTest, ContextPoolEvictsLeastRecentlyUsedBeyondCap) {
  EngineOptions options;
  options.context_pool_capacity = 2;
  ArspEngine engine(options);
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(10, 2, 2, 0.0, 26));
  for (uint64_t seed = 0; seed < 5; ++seed) {
    QueryRequest request = WrRequest(handle, 2, seed, "loop");
    request.use_cache = false;
    ASSERT_TRUE(engine.Solve(request).ok());
    EXPECT_LE(engine.pooled_contexts(), 2u);
  }
  EXPECT_EQ(engine.pooled_contexts(), 2u);
}

TEST(ArspEngineTest, DatasetAccessorReturnsNullForUnknownHandles) {
  ArspEngine engine;
  EXPECT_EQ(engine.dataset(DatasetHandle{}), nullptr);
  const DatasetHandle handle = engine.AddDataset(Example1Dataset());
  ASSERT_NE(engine.dataset(handle), nullptr);
  EXPECT_EQ(engine.dataset(handle)->num_objects(), 4);
  ASSERT_TRUE(engine.DropDataset(handle).ok());
  EXPECT_EQ(engine.dataset(handle), nullptr);
}

TEST(ArspEngineTest, BatchMatchesSerialOnMixedRequests) {
  ArspEngine engine;
  const UncertainDataset small = RandomDataset(12, 2, 2, 0.3, 15);
  const UncertainDataset medium = RandomDataset(30, 3, 3, 0.2, 16);
  const DatasetHandle h_small = engine.AddDataset(small);
  const DatasetHandle h_medium = engine.AddDataset(medium);

  // Mixed families, solvers, and derived queries.
  std::vector<QueryRequest> requests;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    QueryRequest wr2 = WrRequest(h_small, 2, seed, "auto");
    wr2.derived.kind = DerivedKind::kTopKObjects;
    wr2.derived.k = 5;
    requests.push_back(wr2);

    QueryRequest wr3 = WrRequest(h_medium, 3, seed,
                                 seed % 2 == 0 ? "kdtt+" : "bnb");
    wr3.derived.kind = DerivedKind::kCountControlled;
    wr3.derived.max_objects = 4;
    requests.push_back(wr3);

    QueryRequest rank;
    rank.dataset = h_medium;
    rank.constraints = ConstraintSpec::Region(WrRegion(3, 2));
    rank.solver = "loop";
    rank.derived.kind = DerivedKind::kObjectsAboveThreshold;
    rank.derived.threshold = 0.3;
    requests.push_back(rank);
  }
  // Serial reference on a separate engine so batch caching cannot help.
  ArspEngine serial_engine;
  const DatasetHandle s_small = serial_engine.AddDataset(small);
  const DatasetHandle s_medium = serial_engine.AddDataset(medium);
  std::vector<QueryRequest> serial_requests = requests;
  for (QueryRequest& r : serial_requests) {
    r.dataset = r.dataset.id == h_small.id ? s_small : s_medium;
  }

  const auto batch = engine.SolveBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << i << ": " << batch[i].status().ToString();
    const auto serial = serial_engine.Solve(serial_requests[i]);
    ASSERT_TRUE(serial.ok()) << i;
    EXPECT_EQ(MaxAbsDiff(*batch[i]->result, *serial->result), 0.0) << i;
    EXPECT_EQ(batch[i]->ranked, serial->ranked) << i;
    EXPECT_EQ(batch[i]->count_threshold, serial->count_threshold) << i;
    EXPECT_EQ(batch[i]->solver, serial->solver) << i;
  }
}

TEST(ArspEngineTest, ConcurrentBatchSharesOnePooledContext) {
  // Many concurrent requests against the same (dataset, constraints) pair:
  // every thread races on the shared context's lazy preprocessing. The
  // pattern is the TSan target for the locked lazy-init.
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(25, 3, 3, 0.3, 17));
  const char* solvers[] = {"loop", "kdtt", "kdtt+", "qdtt+", "bnb", "mwtt"};
  std::vector<QueryRequest> requests;
  for (int round = 0; round < 3; ++round) {
    for (const char* solver : solvers) {
      QueryRequest request = WrRequest(handle, 3, 17, solver);
      request.use_cache = round % 2 == 0;
      requests.push_back(request);
    }
  }
  const auto outcomes = engine.SolveBatch(requests);
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].status().ToString();
  const ArspResult& reference = *outcomes[0]->result;
  for (size_t i = 1; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok())
        << i << ": " << outcomes[i].status().ToString();
    EXPECT_LT(MaxAbsDiff(reference, *outcomes[i]->result), 1e-8) << i;
  }
  EXPECT_EQ(engine.pooled_contexts(), 1u);
}

TEST(ArspEngineTest, BatchReportsPerRequestErrors) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(10, 2, 3, 0.0, 18));
  std::vector<QueryRequest> requests;
  requests.push_back(WrRequest(handle, 3, 18, "kdtt+"));
  // dual-2d-ms needs d=2 single-instance data: clean FailedPrecondition.
  requests.push_back(WrRequest(handle, 3, 18, "dual-2d-ms"));
  requests.push_back(WrRequest(DatasetHandle{1234}, 3, 18));
  const auto outcomes = engine.SolveBatch(requests);
  EXPECT_TRUE(outcomes[0].ok());
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].status().code(), StatusCode::kFailedPrecondition);
  ASSERT_FALSE(outcomes[2].ok());
  EXPECT_EQ(outcomes[2].status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------- auto selection

TEST(AutoSelection, RespectsCapabilityFlags) {
  // General preference region: the DUAL family is inapplicable, so "auto"
  // must never hand it out regardless of shape.
  const UncertainDataset d2 = RandomDataset(10, 1, 2, 0.0, 19);
  ExecutionContext general(d2, WrRegion(2, 1));
  const std::string general_choice = AutoSelectSolverName(general);
  auto general_solver = SolverRegistry::Create(general_choice);
  ASSERT_TRUE(general_solver.ok());
  EXPECT_TRUE((*general_solver)->ValidateContext(general).ok());
  EXPECT_EQ((*general_solver)->capabilities() & kCapRequiresWeightRatios,
            0u);

  // Weight ratios at d=3: DUAL applies, DUAL-2D-MS must not be chosen.
  const UncertainDataset d3 = RandomDataset(40, 3, 3, 0.0, 20);
  ExecutionContext wr3(d3, RandomWr(3, 20));
  EXPECT_EQ(AutoSelectSolverName(wr3), "dual");

  // Weight ratios at d=2 with multi-instance objects: DUAL-2D-MS's
  // single-instance capability flag disqualifies it; DUAL steps in.
  const UncertainDataset multi2 = RandomDataset(40, 3, 2, 0.0, 21);
  ExecutionContext wr2multi(multi2, RandomWr(2, 21));
  EXPECT_EQ(AutoSelectSolverName(wr2multi), "dual");

  // The DUAL-2D-MS niche: d=2, single-instance, small n.
  const UncertainDataset single2 = RandomDataset(40, 1, 2, 0.5, 22);
  ExecutionContext wr2single(single2, RandomWr(2, 22));
  EXPECT_EQ(AutoSelectSolverName(wr2single), "dual-2d-ms");
}

TEST(AutoSelection, EngineResolvesAutoToConcreteSolverAndMatchesIt) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(30, 3, 3, 0.2, 23));
  auto auto_resp = engine.Solve(WrRequest(handle, 3, 23, "auto"));
  ASSERT_TRUE(auto_resp.ok());
  EXPECT_EQ(auto_resp->solver, "dual");
  // An explicit request for the resolved solver shares the cache entry.
  auto explicit_resp = engine.Solve(WrRequest(handle, 3, 23, "dual"));
  ASSERT_TRUE(explicit_resp.ok());
  EXPECT_TRUE(explicit_resp->cache_hit);
  EXPECT_EQ(explicit_resp->result.get(), auto_resp->result.get());
}

TEST(AutoSelection, SolverNamesAreCaseInsensitive) {
  // The registry lowercases lookups; engine-side resolution and cache keys
  // must agree, so "AUTO" resolves like "auto" and shares its entries.
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(20, 3, 3, 0.0, 27));
  auto upper = engine.Solve(WrRequest(handle, 3, 27, "AUTO"));
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper->solver, "dual");
  auto lower = engine.Solve(WrRequest(handle, 3, 27, "Dual"));
  ASSERT_TRUE(lower.ok());
  EXPECT_TRUE(lower->cache_hit);
  EXPECT_EQ(lower->result.get(), upper->result.get());
}

TEST(AutoSelection, RegistryAutoEntryDelegates) {
  const UncertainDataset dataset = RandomDataset(20, 3, 3, 0.0, 24);
  ExecutionContext context(dataset, RandomWr(3, 24));
  auto auto_solver = SolverRegistry::Create("auto");
  ASSERT_TRUE(auto_solver.ok());
  auto via_auto = (*auto_solver)->Solve(context);
  ASSERT_TRUE(via_auto.ok());
  auto dual = SolverRegistry::Create("dual");
  ASSERT_TRUE(dual.ok());
  auto via_dual = (*dual)->Solve(context);
  ASSERT_TRUE(via_dual.ok());
  EXPECT_EQ(MaxAbsDiff(*via_auto, *via_dual), 0.0);
}

TEST(AutoSelection, RegistryAutoEntryForwardsOptions) {
  // Options given to the registry "auto" entry reach the resolved solver —
  // the same behavior as the engine path. Here auto resolves to DUAL-2D-MS
  // (d=2, single-instance, small n), which accepts max_memory_bytes.
  const UncertainDataset dataset = RandomDataset(15, 1, 2, 0.0, 29);
  ExecutionContext context(dataset, RandomWr(2, 29));
  ASSERT_EQ(AutoSelectSolverName(context), "dual-2d-ms");
  auto good = SolverRegistry::Create(
      "auto", SolverOptions().SetInt("max_memory_bytes", 1 << 20));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE((*good)->Solve(context).ok());
  // Unknown options are validated against the resolved solver at Solve
  // time (resolution needs the context, so Configure cannot check them).
  auto bad = SolverRegistry::Create(
      "auto", SolverOptions().SetInt("not_an_option", 1));
  ASSERT_TRUE(bad.ok());
  auto result = (*bad)->Solve(context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ derived specs

TEST(ArspEngineTest, DerivedQueriesMatchQueriesH) {
  ArspEngine engine;
  const UncertainDataset dataset = RandomDataset(30, 3, 3, 0.2, 25);
  const DatasetHandle handle = engine.AddDataset(dataset);

  QueryRequest request = WrRequest(handle, 3, 25, "kdtt+");
  request.derived.kind = DerivedKind::kTopKInstances;
  request.derived.k = 7;
  auto top_instances = engine.Solve(request);
  ASSERT_TRUE(top_instances.ok());
  EXPECT_EQ(top_instances->ranked,
            TopKInstances(*top_instances->result, 7));

  request.derived.kind = DerivedKind::kObjectsAboveThreshold;
  request.derived.threshold = 0.25;
  auto above = engine.Solve(request);
  ASSERT_TRUE(above.ok());
  EXPECT_TRUE(above->cache_hit);  // derived spec is not part of the key
  EXPECT_EQ(above->ranked,
            ObjectsAboveThreshold(*above->result, dataset, 0.25));

  request.derived.kind = DerivedKind::kCountControlled;
  request.derived.max_objects = 5;
  auto controlled = engine.Solve(request);
  ASSERT_TRUE(controlled.ok());
  EXPECT_EQ(controlled->count_threshold,
            ThresholdForObjectCount(*controlled->result, dataset, 5));
  EXPECT_EQ(controlled->ranked,
            ObjectsAboveThreshold(*controlled->result, dataset,
                                  controlled->count_threshold));
  EXPECT_GE(controlled->ranked.size(), 5u);  // ties only ever extend
}

// ---------------------------------------------------------- latency stats

TEST(ArspEngineTest, LatencyStatsTrackSuccessfulRequests) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(20, 3, 3, 0.2, 31));

  EXPECT_EQ(engine.latency_stats().count, 0);

  constexpr int kRequests = 7;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(engine.Solve(WrRequest(handle, 3, 31, "kdtt+")).ok());
  }
  // A failed request is not a latency sample (its instant reject would
  // drag every percentile toward zero).
  QueryRequest bad = WrRequest(handle, 3, 31, "no-such-solver");
  ASSERT_FALSE(engine.Solve(bad).ok());

  const ArspEngine::LatencyStats stats = engine.latency_stats();
  EXPECT_EQ(stats.count, kRequests);
  EXPECT_EQ(stats.window, kRequests);
  EXPECT_GT(stats.mean_ms, 0.0);
  EXPECT_GE(stats.mean_ms, stats.min_ms);
  EXPECT_GE(stats.p95_ms, stats.p50_ms);
  EXPECT_GE(stats.p50_ms, stats.min_ms);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ArspEngineTest, LatencyWindowIsBoundedAndZeroDisables) {
  EngineOptions tiny;
  tiny.latency_window = 4;
  ArspEngine engine(tiny);
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(12, 2, 2, 0.0, 32));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Solve(WrRequest(handle, 2, 32, "loop")).ok());
  }
  const ArspEngine::LatencyStats stats = engine.latency_stats();
  EXPECT_EQ(stats.count, 10);   // lifetime total keeps counting
  EXPECT_EQ(stats.window, 4);   // percentiles cover only the ring

  EngineOptions off;
  off.latency_window = 0;
  ArspEngine disabled(off);
  const DatasetHandle h2 =
      disabled.AddDataset(RandomDataset(12, 2, 2, 0.0, 32));
  ASSERT_TRUE(disabled.Solve(WrRequest(h2, 2, 32, "loop")).ok());
  EXPECT_EQ(disabled.latency_stats().count, 0);
}

TEST(ArspEngineTest, LatencyCountsBatchEntries) {
  ArspEngine engine;
  const DatasetHandle handle =
      engine.AddDataset(RandomDataset(12, 2, 2, 0.0, 33));
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(WrRequest(handle, 2, 33 + i, "loop"));
  }
  for (const auto& outcome : engine.SolveBatch(requests)) {
    ASSERT_TRUE(outcome.ok());
  }
  EXPECT_EQ(engine.latency_stats().count, 5);
}

// ------------------------------------------------------------ spec parsing

TEST(ParseConstraintSpecTest, ParsesWeightRatiosAndRank) {
  auto wr = ParseConstraintSpec("wr:0.5,2.0", 2);
  ASSERT_TRUE(wr.ok());
  EXPECT_TRUE(wr->has_weight_ratios());
  EXPECT_DOUBLE_EQ(wr->weight_ratios().lo(0), 0.5);
  EXPECT_DOUBLE_EQ(wr->weight_ratios().hi(0), 2.0);

  auto rank = ParseConstraintSpec("rank:2", 3);
  ASSERT_TRUE(rank.ok());
  EXPECT_FALSE(rank->has_weight_ratios());
  EXPECT_EQ(rank->region().dim(), 3);

  EXPECT_FALSE(ParseConstraintSpec("wr:0.5", 2).ok());       // odd values
  EXPECT_FALSE(ParseConstraintSpec("wr:0.5,2.0", 3).ok());   // wrong arity
  EXPECT_FALSE(ParseConstraintSpec("wr:0.5,,2.0", 2).ok());  // empty token
  EXPECT_FALSE(ParseConstraintSpec("wr:0.5,2.0,", 2).ok());  // trailing comma
  EXPECT_FALSE(ParseConstraintSpec("wr:", 2).ok());          // no values
  EXPECT_FALSE(ParseConstraintSpec("wr:1x,2.0", 2).ok());    // non-numeric
  EXPECT_FALSE(ParseConstraintSpec("rank:5", 3).ok());       // out of range
  EXPECT_FALSE(ParseConstraintSpec("rank:two", 3).ok());     // non-numeric
  EXPECT_FALSE(ParseConstraintSpec("rank:", 3).ok());        // empty count
  EXPECT_FALSE(ParseConstraintSpec("linear:1,2", 2).ok());   // unknown family
}

TEST(ParseConstraintSpecTest, CacheKeysDiscriminate) {
  const auto a = ParseConstraintSpec("wr:0.5,2.0", 2);
  const auto b = ParseConstraintSpec("wr:0.5,2.5", 2);
  const auto c = ParseConstraintSpec("rank:1", 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->CacheKey(), b->CacheKey());
  EXPECT_NE(a->CacheKey(), c->CacheKey());
  EXPECT_EQ(a->CacheKey(), ParseConstraintSpec("wr:0.5,2.0", 2)->CacheKey());
  EXPECT_TRUE(ConstraintSpec().CacheKey().empty());
}

}  // namespace
}  // namespace arsp
