// Copyright 2026 The ARSP Authors.

#include "src/core/arsp_result.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace arsp {
namespace {

TEST(ArspResultTest, CountNonZero) {
  ArspResult result;
  result.instance_probs = {0.0, 0.5, 1e-12, 0.2, 0.0};
  EXPECT_EQ(CountNonZero(result), 3);  // every representable positive
  EXPECT_EQ(CountNonZero(result, 1e-9), 2);
}

TEST(ArspResultTest, ObjectProbabilitiesSumInstances) {
  UncertainDatasetBuilder builder(1);
  builder.AddObject({Point{1.0}, Point{2.0}}, {0.5, 0.5});
  builder.AddSingleton(Point{3.0}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  ArspResult result;
  result.instance_probs = {0.3, 0.2, 0.7};
  const std::vector<double> objs = ObjectProbabilities(result, *dataset);
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_NEAR(objs[0], 0.5, 1e-12);
  EXPECT_NEAR(objs[1], 0.7, 1e-12);
}

TEST(ArspResultTest, TopKOrdersAndTruncates) {
  UncertainDatasetBuilder builder(1);
  for (int i = 0; i < 4; ++i) builder.AddSingleton(Point{1.0 * i}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  ArspResult result;
  result.instance_probs = {0.2, 0.9, 0.9, 0.1};
  const auto top = TopKObjects(result, *dataset, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1);  // tie with 2, lower id first
  EXPECT_EQ(top[1].first, 2);
  EXPECT_EQ(top[2].first, 0);
}

TEST(ArspResultTest, MaxAbsDiff) {
  ArspResult a, b;
  a.instance_probs = {0.1, 0.5, 0.9};
  b.instance_probs = {0.1, 0.6, 0.85};
  EXPECT_NEAR(MaxAbsDiff(a, b), 0.1, 1e-12);
}

}  // namespace
}  // namespace arsp
