// Copyright 2026 The ARSP Authors.

#include "src/io/csv.h"

#include <gtest/gtest.h>

#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

constexpr char kSmallCsv[] =
    "# comment line\n"
    "car-a,0.5,2.0,10.0\n"
    "car-a,0.5,14.0,14.0\n"
    "car-b,1.0,3.0,3.0\n"
    "\n"
    "car-c,0.6,12.0,1.0\n";

TEST(CsvTest, ParsesObjectsInFirstAppearanceOrder) {
  std::vector<std::string> names;
  const auto dataset = ParseUncertainDatasetCsv(kSmallCsv, false, &names);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->dim(), 2);
  EXPECT_EQ(dataset->num_objects(), 3);
  EXPECT_EQ(dataset->num_instances(), 4);
  EXPECT_EQ(names, (std::vector<std::string>{"car-a", "car-b", "car-c"}));
  EXPECT_EQ(dataset->object_size(0), 2);
  EXPECT_DOUBLE_EQ(dataset->object_prob(2), 0.6);
  EXPECT_EQ(dataset->instance(2).point, (Point{3.0, 3.0}));
}

TEST(CsvTest, HeaderIsSkippedWhenRequested) {
  const std::string with_header =
      std::string("object,prob,x,y\n") + "a,1.0,1.0,2.0\n";
  EXPECT_FALSE(ParseUncertainDatasetCsv(with_header, false).ok());
  const auto dataset = ParseUncertainDatasetCsv(with_header, true);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_instances(), 1);
}

TEST(CsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,1.0\n").ok());          // no attrs
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,zap,1.0\n").ok());      // bad prob
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,0.5,1.0,zap\n").ok());  // bad attr
  EXPECT_FALSE(ParseUncertainDatasetCsv("").ok());                 // empty
  // Inconsistent dimensionality.
  EXPECT_FALSE(
      ParseUncertainDatasetCsv("a,0.5,1.0,2.0\nb,0.5,1.0\n").ok());
  // Probability violations surface as dataset validation errors.
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,0.7,1.0\na,0.7,2.0\n").ok());
}

TEST(CsvTest, RejectsNonFiniteValues) {
  // strtod accepts these spellings; the parser must not — NaN/inf would
  // poison every downstream comparison and index bound.
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,nan,1.0\n").ok());
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,inf,1.0\n").ok());
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,0.5,nan\n").ok());
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,0.5,-inf\n").ok());
  EXPECT_FALSE(ParseUncertainDatasetCsv("a,0.5,1e999\n").ok());  // overflow
}

TEST(CsvTest, ProbabilityErrorsNameTheLine) {
  // Out-of-range probabilities fail at the offending row, not as an
  // anonymous builder error after the whole file parsed.
  const auto zero = ParseUncertainDatasetCsv("a,0.5,1.0\nb,0,2.0\n");
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("line 2"), std::string::npos)
      << zero.status().ToString();
  const auto above = ParseUncertainDatasetCsv("a,1.5,1.0\n");
  ASSERT_FALSE(above.ok());
  EXPECT_NE(above.status().message().find("line 1"), std::string::npos);
  const auto negative = ParseUncertainDatasetCsv("a,-0.5,1.0\n");
  EXPECT_FALSE(negative.ok());
  // Per-object sums are checked incrementally: the error names the row
  // that crossed 1 and the object key.
  const auto sum =
      ParseUncertainDatasetCsv("a,0.6,1.0\nb,1.0,3.0\na,0.6,2.0\n");
  ASSERT_FALSE(sum.ok());
  EXPECT_NE(sum.status().message().find("line 3"), std::string::npos)
      << sum.status().ToString();
  EXPECT_NE(sum.status().message().find("'a'"), std::string::npos);
}

TEST(CsvTest, RejectsEmptyObjectKeyAndToleratesTrailingBlankLines) {
  EXPECT_FALSE(ParseUncertainDatasetCsv(",0.5,1.0\n").ok());
  EXPECT_FALSE(ParseUncertainDatasetCsv("  ,0.5,1.0\n").ok());
  // Trailing blank lines (and CRLF blanks) are not data rows.
  const auto dataset =
      ParseUncertainDatasetCsv("a,0.5,1.0\n\n\r\n  \n", false);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_instances(), 1);
}

TEST(CsvTest, RoundTripThroughResultCsv) {
  std::vector<std::string> names;
  const auto dataset = ParseUncertainDatasetCsv(kSmallCsv, false, &names);
  ASSERT_TRUE(dataset.ok());
  const ArspResult result =
      ComputeArspLoop(*dataset, testing_util::WrRegion(2, 1));

  const std::string inst_csv = FormatArspResultCsv(result, *dataset, &names);
  EXPECT_NE(inst_csv.find("object,instance,prob,pr_rsky"), std::string::npos);
  EXPECT_NE(inst_csv.find("car-b"), std::string::npos);
  // One header plus one row per instance.
  EXPECT_EQ(std::count(inst_csv.begin(), inst_csv.end(), '\n'),
            dataset->num_instances() + 1);

  const std::string obj_csv = FormatObjectResultCsv(result, *dataset, &names);
  EXPECT_EQ(std::count(obj_csv.begin(), obj_csv.end(), '\n'),
            dataset->num_objects() + 1);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/arsp_csv_test.csv";
  ASSERT_TRUE(WriteTextFile(path, kSmallCsv).ok());
  const auto dataset = LoadUncertainDatasetCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_instances(), 4);
  EXPECT_FALSE(LoadUncertainDatasetCsv(path + ".does-not-exist").ok());
}

TEST(CsvTest, WhitespaceTolerance) {
  const auto dataset =
      ParseUncertainDatasetCsv("  a , 0.5 , 1.0 , 2.0 \r\n", false);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->instance(0).point, (Point{1.0, 2.0}));
}

}  // namespace
}  // namespace arsp
