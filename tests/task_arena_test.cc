// Copyright 2026 The ARSP Authors.
//
// CoreBudget + TaskArena: the process-global concurrency ledger (reserve /
// try-acquire / release accounting, ARSP_THREADS-independent via the test
// override) and the work-stealing scheduler (every task runs exactly once,
// worker ids are in range, nested submission, repeated RunAndWait rounds,
// graceful degradation to a serial loop when the budget grants nothing).

#include "src/common/task_arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "src/common/thread_pool.h"

namespace arsp {
namespace {

// Restores the real budget when a test exits (0 = use env/hardware).
class ScopedBudget {
 public:
  explicit ScopedBudget(int total) {
    internal::SetCoreBudgetTotalForTesting(total);
  }
  ~ScopedBudget() { internal::SetCoreBudgetTotalForTesting(0); }
};

TEST(CoreBudgetTest, TryAcquireNeverOversubscribes) {
  ScopedBudget budget(4);
  const int base = CoreBudget::InUse();
  const int a = CoreBudget::TryAcquire(3);
  EXPECT_EQ(a, 3);
  const int b = CoreBudget::TryAcquire(3);
  EXPECT_EQ(b, 1);  // only one slot left
  const int c = CoreBudget::TryAcquire(3);
  EXPECT_EQ(c, 0);  // exhausted
  CoreBudget::Release(a + b);
  EXPECT_EQ(CoreBudget::InUse(), base);
}

TEST(CoreBudgetTest, ReserveIsUnconditional) {
  ScopedBudget budget(2);
  const int base = CoreBudget::InUse();
  CoreBudget::Reserve(5);  // explicit pool sizes overshoot the budget
  EXPECT_EQ(CoreBudget::InUse(), base + 5);
  EXPECT_EQ(CoreBudget::TryAcquire(1), 0);  // but intra-query gets nothing
  CoreBudget::Release(5);
  EXPECT_EQ(CoreBudget::InUse(), base);
}

TEST(CoreBudgetTest, ThreadPoolChargesTheBudget) {
  ScopedBudget budget(8);
  const int base = CoreBudget::InUse();
  {
    ThreadPool pool(3);
    EXPECT_EQ(CoreBudget::InUse(), base + 3);
    // What is left for intra-query workers is total − pool.
    const int granted = CoreBudget::TryAcquire(100);
    EXPECT_EQ(granted, 8 - base - 3);
    CoreBudget::Release(granted);
  }
  EXPECT_EQ(CoreBudget::InUse(), base);  // pool destructor released
}

TEST(TaskArenaTest, RunsEveryTaskExactlyOnce) {
  ScopedBudget budget(4);
  TaskArena arena(4);
  ASSERT_GE(arena.num_workers(), 1);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  for (int i = 0; i < kTasks; ++i) {
    arena.Submit([&runs, i, &arena](int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, arena.num_workers());
      runs[i].fetch_add(1);
    });
  }
  arena.RunAndWait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(arena.tasks_spawned(), kTasks);
  EXPECT_LE(arena.tasks_stolen(), arena.tasks_spawned());
}

TEST(TaskArenaTest, NestedSubmissionFromInsideTasks) {
  ScopedBudget budget(4);
  TaskArena arena(4);
  std::atomic<int> leaf_runs{0};
  constexpr int kRoots = 16;
  constexpr int kLeavesPerRoot = 8;
  for (int i = 0; i < kRoots; ++i) {
    arena.Submit([&arena, &leaf_runs](int) {
      for (int j = 0; j < kLeavesPerRoot; ++j) {
        arena.Submit([&leaf_runs](int) { leaf_runs.fetch_add(1); });
      }
    });
  }
  arena.RunAndWait();
  EXPECT_EQ(leaf_runs.load(), kRoots * kLeavesPerRoot);
  EXPECT_EQ(arena.tasks_spawned(), kRoots + kRoots * kLeavesPerRoot);
}

TEST(TaskArenaTest, RepeatedRoundsReuseTheArena) {
  ScopedBudget budget(4);
  TaskArena arena(4);
  std::atomic<int> runs{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      arena.Submit([&runs](int) { runs.fetch_add(1); });
    }
    arena.RunAndWait();
    EXPECT_EQ(runs.load(), (round + 1) * 20);
  }
}

TEST(TaskArenaTest, ExhaustedBudgetDegradesToSerialLoop) {
  // The realistic serial case: the batch ThreadPool reserved every core, so
  // the intra-query arena gets no helpers and runs on the caller alone.
  ScopedBudget budget(1);
  CoreBudget::Reserve(1);
  TaskArena arena(8);
  EXPECT_EQ(arena.num_workers(), 1);
  // Owner-thread submissions with a single worker run in submission order.
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    arena.Submit([&order, i](int worker) {
      EXPECT_EQ(worker, 0);
      order.push_back(i);
    });
  }
  arena.RunAndWait();
  ASSERT_EQ(order.size(), 10u);
  // Single worker: own-deque LIFO over owner round-robin submissions still
  // drains everything; nothing to steal from.
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(arena.tasks_stolen(), 0);
  CoreBudget::Release(1);
}

TEST(TaskArenaTest, ReleasesBudgetOnDestruction) {
  ScopedBudget budget(6);
  const int base = CoreBudget::InUse();
  {
    TaskArena arena(6);
    EXPECT_EQ(CoreBudget::InUse(), base + arena.num_workers() - 1);
  }
  EXPECT_EQ(CoreBudget::InUse(), base);
}

TEST(TaskArenaTest, RequestClampAndGrantShrink) {
  ScopedBudget budget(3);
  // The caller's slot is free; helpers come from the budget. Asking for 100
  // workers grants the whole 3-slot budget as helpers: 4 workers total.
  TaskArena arena(100);
  EXPECT_EQ(arena.num_workers(), 4);
  TaskArena clamped(0);  // < 1 clamps to 1 worker (the caller)
  EXPECT_EQ(clamped.num_workers(), 1);
}

}  // namespace
}  // namespace arsp
