// Copyright 2026 The ARSP Authors.
//
// The tracing layer (src/obs/trace.h): span nesting and annotation
// mechanics, the zero-cost disabled mode, the wire serialization that
// carries shard subtrees in QueryResponseWire (including malformed-input
// rejection), the text renderer, and the AdoptChild stitching hook the
// cluster coordinator uses.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace arsp {
namespace obs {
namespace {

TEST(TraceTest, RootSpanOpensAndFinishCloses) {
  Trace trace(42, "request");
  EXPECT_EQ(trace.id(), 42u);
  EXPECT_EQ(trace.root().name, "request");
  EXPECT_GT(trace.root().start_ns, 0u);
  EXPECT_EQ(trace.root().end_ns, 0u);  // still open
  trace.Finish();
  EXPECT_GE(trace.root().end_ns, trace.root().start_ns);
}

TEST(TraceTest, FinishIsIdempotent) {
  Trace trace(1);
  trace.Finish();
  const uint64_t end = trace.root().end_ns;
  trace.Finish();
  EXPECT_EQ(trace.root().end_ns, end);
}

TEST(TraceTest, ScopedSpansNestLexically) {
  Trace trace(7);
  {
    ScopedSpan outer(&trace, "outer");
    EXPECT_TRUE(outer.enabled());
    {
      ScopedSpan inner(&trace, "inner");
      inner.Annotate("k", "v");
      inner.Annotate("n", static_cast<int64_t>(12));
    }
    ScopedSpan sibling(&trace, "sibling");
  }
  trace.Finish();

  const Span& root = trace.root();
  ASSERT_EQ(root.children.size(), 1u);
  const Span& outer = root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[1].name, "sibling");
  ASSERT_EQ(outer.children[0].annotations.size(), 2u);
  EXPECT_EQ(outer.children[0].annotations[0].first, "k");
  EXPECT_EQ(outer.children[0].annotations[0].second, "v");
  EXPECT_EQ(outer.children[0].annotations[1].second, "12");
  // Closed children have their clocks stopped inside the parent's window.
  EXPECT_GE(outer.children[0].end_ns, outer.children[0].start_ns);
  EXPECT_GE(outer.children[0].start_ns, outer.start_ns);
}

TEST(TraceTest, AnnotateTargetsInnermostOpenSpan) {
  Trace trace(3);
  trace.Annotate("root_key", "root_value");
  {
    ScopedSpan child(&trace, "child");
    trace.Annotate("child_key", "child_value");
  }
  trace.Finish();
  ASSERT_EQ(trace.root().annotations.size(), 1u);
  EXPECT_EQ(trace.root().annotations[0].first, "root_key");
  ASSERT_EQ(trace.root().children.size(), 1u);
  ASSERT_EQ(trace.root().children[0].annotations.size(), 1u);
  EXPECT_EQ(trace.root().children[0].annotations[0].first, "child_key");
}

TEST(TraceTest, NullTraceIsZeroCostNoOp) {
  // The disabled mode used on every untraced request: all calls must be
  // safe no-ops so instrumented code never branches on enablement.
  ScopedSpan span(nullptr, "ignored");
  EXPECT_FALSE(span.enabled());
  span.Annotate("k", "v");
  span.Annotate("n", static_cast<int64_t>(5));
}

TEST(TraceTest, SpansAfterFinishAreIgnored) {
  Trace trace(9);
  trace.Finish();
  ScopedSpan late(&trace, "late");
  EXPECT_FALSE(late.enabled());
  EXPECT_TRUE(trace.root().children.empty());
}

TEST(TraceTest, NewTraceIdIsNonZeroAndDistinct) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    const uint64_t id = Trace::NewTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 64u);
}

// Builds a small tree with known values for serialization tests.
Span MakeTree() {
  Span root;
  root.name = "engine_query";
  root.start_ns = 1000;
  root.end_ns = 9000;
  root.annotations.emplace_back("solver", "kdtt+");
  Span solve;
  solve.name = "solve";
  solve.start_ns = 2000;
  solve.end_ns = 8000;
  solve.annotations.emplace_back("instances", "120");
  Span probe;
  probe.name = "cache_probe";
  probe.start_ns = 1100;
  probe.end_ns = 1200;
  root.children.push_back(probe);
  root.children.push_back(solve);
  return root;
}

TEST(TraceSerializationTest, RoundTripPreservesEverything) {
  const std::string bytes = SerializeSpans({MakeTree()});
  std::vector<Span> out;
  ASSERT_TRUE(DeserializeSpans(bytes, &out));
  ASSERT_EQ(out.size(), 1u);
  const Span& root = out[0];
  EXPECT_EQ(root.name, "engine_query");
  EXPECT_EQ(root.start_ns, 1000u);
  EXPECT_EQ(root.end_ns, 9000u);
  ASSERT_EQ(root.annotations.size(), 1u);
  EXPECT_EQ(root.annotations[0].first, "solver");
  EXPECT_EQ(root.annotations[0].second, "kdtt+");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "cache_probe");
  EXPECT_EQ(root.children[1].name, "solve");
  ASSERT_EQ(root.children[1].annotations.size(), 1u);
  EXPECT_EQ(root.children[1].annotations[0].second, "120");
}

TEST(TraceSerializationTest, RoundTripMultipleRoots) {
  const std::string bytes = SerializeSpans({MakeTree(), MakeTree()});
  std::vector<Span> out;
  ASSERT_TRUE(DeserializeSpans(bytes, &out));
  EXPECT_EQ(out.size(), 2u);
}

TEST(TraceSerializationTest, EmptyListRoundTrips) {
  std::vector<Span> out;
  EXPECT_TRUE(DeserializeSpans(SerializeSpans({}), &out));
  EXPECT_TRUE(out.empty());
}

TEST(TraceSerializationTest, RejectsEmptyAndBadVersion) {
  std::vector<Span> out;
  EXPECT_FALSE(DeserializeSpans("", &out));
  std::string bad = SerializeSpans({MakeTree()});
  bad[0] = static_cast<char>(0x7f);  // unknown format version
  out.emplace_back();  // pre-populate: failure must clear it
  EXPECT_FALSE(DeserializeSpans(bad, &out));
  EXPECT_TRUE(out.empty());
}

TEST(TraceSerializationTest, RejectsTruncation) {
  // Every strict prefix must be rejected (and leave `out` empty): the bytes
  // ride in a wire frame that can be corrupted in transit.
  const std::string bytes = SerializeSpans({MakeTree()});
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<Span> out;
    EXPECT_FALSE(DeserializeSpans(bytes.substr(0, len), &out))
        << "prefix of length " << len << " decoded";
    EXPECT_TRUE(out.empty());
  }
}

TEST(TraceSerializationTest, RejectsTrailingGarbage) {
  std::vector<Span> out;
  EXPECT_FALSE(DeserializeSpans(SerializeSpans({MakeTree()}) + "x", &out));
  EXPECT_TRUE(out.empty());
}

TEST(TraceRenderTest, RendersIdNamesAndAnnotations) {
  const std::string text = RenderSpanTree(MakeTree(), 0xabcdef0123456789ull);
  EXPECT_NE(text.find("trace abcdef0123456789"), std::string::npos);
  EXPECT_NE(text.find("engine_query"), std::string::npos);
  EXPECT_NE(text.find("cache_probe"), std::string::npos);
  EXPECT_NE(text.find("solve"), std::string::npos);
  EXPECT_NE(text.find("solver=kdtt+"), std::string::npos);
  // Durations: the root spans 8000ns = 0.008ms.
  EXPECT_NE(text.find("0.008ms"), std::string::npos);
}

TEST(TraceStitchTest, AdoptChildAttachesShardSubtree) {
  // The coordinator path: a shard's serialized engine_query subtree is
  // deserialized and adopted under the coordinator's open scatter span.
  const std::string shard_bytes = SerializeSpans({MakeTree()});

  Trace trace(11, "coordinator_query");
  {
    ScopedSpan scatter(&trace, "scatter");
    std::vector<Span> shard_spans;
    ASSERT_TRUE(DeserializeSpans(shard_bytes, &shard_spans));
    ASSERT_EQ(shard_spans.size(), 1u);
    shard_spans[0].annotations.emplace_back("shard", "0");
    trace.AdoptChild(std::move(shard_spans[0]));
  }
  trace.Finish();

  const Span& root = trace.root();
  ASSERT_EQ(root.children.size(), 1u);
  const Span& scatter = root.children[0];
  EXPECT_EQ(scatter.name, "scatter");
  ASSERT_EQ(scatter.children.size(), 1u);
  const Span& shard = scatter.children[0];
  EXPECT_EQ(shard.name, "engine_query");
  EXPECT_EQ(shard.children.size(), 2u);
  // The adopted subtree keeps the remote process's clock values verbatim;
  // the renderer resets its offset base per clock domain, so rendering the
  // stitched tree must not crash or produce absurd offsets.
  const std::string text = RenderSpanTree(root, trace.id());
  EXPECT_NE(text.find("shard=0"), std::string::npos);
  EXPECT_NE(text.find("cache_probe"), std::string::npos);
}

TEST(TraceStitchTest, AdoptAfterFinishFallsBackToRoot) {
  Trace trace(12);
  trace.Finish();
  Span orphan;
  orphan.name = "late_shard";
  trace.AdoptChild(std::move(orphan));
  ASSERT_EQ(trace.root().children.size(), 1u);
  EXPECT_EQ(trace.root().children[0].name, "late_shard");
}

}  // namespace
}  // namespace obs
}  // namespace arsp
