// Copyright 2026 The ARSP Authors.
//
// Cross-validation of the two baselines: ENUM evaluates Eq. (2) literally
// over possible worlds; LOOP evaluates the factored Eq. (3). Their agreement
// on random inputs validates the factorization every fast algorithm relies
// on.

#include <gtest/gtest.h>

#include "src/core/enum_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::Example1Dataset;
using testing_util::Example1Wr;
using testing_util::RandomDataset;
using testing_util::WrRegion;

TEST(EnumLoopTest, SingleObjectIsItsOwnRskyline) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{1.0, 2.0}, Point{2.0, 1.0}}, {0.4, 0.6});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  for (const ArspResult& result :
       {ComputeArspEnum(*dataset, region), ComputeArspLoop(*dataset, region)}) {
    // No other object exists, so every instance keeps its own probability.
    EXPECT_NEAR(result.instance_probs[0], 0.4, 1e-12);
    EXPECT_NEAR(result.instance_probs[1], 0.6, 1e-12);
  }
}

TEST(EnumLoopTest, CertainDominatorZeroesOut) {
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.0, 0.0}, 1.0);  // dominates everything
  builder.AddSingleton(Point{1.0, 1.0}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult result = ComputeArspEnum(*dataset, region);
  EXPECT_NEAR(result.instance_probs[0], 1.0, 1e-12);
  EXPECT_NEAR(result.instance_probs[1], 0.0, 1e-12);
  EXPECT_NEAR(MaxAbsDiff(result, ComputeArspLoop(*dataset, region)), 0.0,
              1e-12);
}

TEST(EnumLoopTest, UncertainDominatorScalesSurvival) {
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.0, 0.0}, 0.3);
  builder.AddSingleton(Point{1.0, 1.0}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult result = ComputeArspEnum(*dataset, region);
  EXPECT_NEAR(result.instance_probs[0], 0.3, 1e-12);
  EXPECT_NEAR(result.instance_probs[1], 0.7, 1e-12);  // survives absence
}

TEST(EnumLoopTest, Example1StyleDataset) {
  const UncertainDataset dataset = Example1Dataset();
  const PreferenceRegion region =
      PreferenceRegion::FromWeightRatios(Example1Wr());
  const ArspResult via_enum = ComputeArspEnum(dataset, region);
  const ArspResult via_loop = ComputeArspLoop(dataset, region);
  EXPECT_NEAR(MaxAbsDiff(via_enum, via_loop), 0.0, 1e-12);

  // Instances of T3 near the origin dominate t2,3 = (9,12) (Example 3), so
  // t2,3 only survives when T3 takes no dominating instance — impossible
  // since all three T3 instances dominate it. Verify.
  const int t23 = 4;  // global index: T1 has 2 instances, T2's third is #4
  EXPECT_EQ(dataset.instance(t23).point, (Point{9.0, 12.0}));
  EXPECT_NEAR(via_enum.instance_probs[t23], 0.0, 1e-12);
}

TEST(EnumLoopTest, EqualCoordinateInstancesEliminateEachOther) {
  // Two distinct objects with identical certain instances F-dominate each
  // other, so both rskyline probabilities are zero (paper definition).
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{1.0, 1.0}, 1.0);
  builder.AddSingleton(Point{1.0, 1.0}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  for (const ArspResult& result :
       {ComputeArspEnum(*dataset, region), ComputeArspLoop(*dataset, region)}) {
    EXPECT_NEAR(result.instance_probs[0], 0.0, 1e-12);
    EXPECT_NEAR(result.instance_probs[1], 0.0, 1e-12);
  }
}

TEST(EnumLoopTest, RandomAgreementSweep) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset =
        RandomDataset(/*num_objects=*/6, /*max_instances=*/3, dim,
                      /*phi=*/(seed % 2) * 0.5, seed);
    const PreferenceRegion region = WrRegion(dim, dim - 1);
    const ArspResult via_enum = ComputeArspEnum(dataset, region);
    const ArspResult via_loop = ComputeArspLoop(dataset, region);
    EXPECT_LT(MaxAbsDiff(via_enum, via_loop), 1e-10) << "seed=" << seed;
  }
}

TEST(EnumLoopTest, RandomAgreementWithGridTies) {
  // Grid-snapped coordinates force exact ties and duplicates across objects.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const UncertainDataset dataset =
        RandomDataset(6, 3, 2, 0.0, seed, /*grid=*/true);
    const PreferenceRegion region = WrRegion(2, 1);
    EXPECT_LT(MaxAbsDiff(ComputeArspEnum(dataset, region),
                         ComputeArspLoop(dataset, region)),
              1e-10)
        << "seed=" << seed;
  }
}

TEST(EnumLoopTest, InstanceProbabilitiesNeverExceedExistence) {
  const UncertainDataset dataset = RandomDataset(8, 3, 3, 0.3, 99);
  const PreferenceRegion region = WrRegion(3, 2);
  const ArspResult result = ComputeArspLoop(dataset, region);
  for (int i = 0; i < dataset.num_instances(); ++i) {
    EXPECT_GE(result.instance_probs[static_cast<size_t>(i)], 0.0);
    EXPECT_LE(result.instance_probs[static_cast<size_t>(i)],
              dataset.instance(i).prob + 1e-12);
  }
}

}  // namespace
}  // namespace arsp
