// Copyright 2026 The ARSP Authors.
//
// Column<T> — the owned-vs-borrowed storage seam under every hot array in
// the out-of-core data plane (src/common/column.h). These tests pin the
// contracts the snapshot loader leans on: borrowed columns alias their
// backing without owning it, mutation of borrowed storage dies rather than
// silently copying, copies of owned columns are deep, and ColumnBytes
// splits the footprint by storage class.

#include "src/common/column.h"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/aligned.h"

namespace arsp {
namespace {

AlignedVector<double> Doubles(std::initializer_list<double> values) {
  AlignedVector<double> v;
  v.assign(values.begin(), values.end());
  return v;
}

TEST(ColumnOwned, DefaultIsEmptyAndOwned) {
  Column<double> column;
  EXPECT_FALSE(column.borrowed());
  EXPECT_TRUE(column.empty());
  EXPECT_EQ(column.size(), 0u);
  EXPECT_EQ(column.bytes(), 0u);
}

TEST(ColumnOwned, WrapsVectorAndMutates) {
  Column<double> column(Doubles({1.0, 2.0, 3.0}));
  EXPECT_FALSE(column.borrowed());
  EXPECT_EQ(column.size(), 3u);
  EXPECT_EQ(column.bytes(), 3 * sizeof(double));
  EXPECT_DOUBLE_EQ(column[1], 2.0);

  column.push_back(4.0);
  column.at_mut(0) = -1.0;
  EXPECT_EQ(column.size(), 4u);
  EXPECT_DOUBLE_EQ(column[0], -1.0);
  EXPECT_DOUBLE_EQ(column[3], 4.0);

  column.resize(2);
  EXPECT_EQ(column.size(), 2u);
  column.clear();
  EXPECT_TRUE(column.empty());
}

TEST(ColumnOwned, SyncAfterDirectVectorSurgery) {
  Column<int32_t> column;
  column.mutable_vec().assign({7, 8, 9});
  // Before sync() the cached view is stale; after, it tracks the vector.
  column.sync();
  EXPECT_EQ(column.size(), 3u);
  EXPECT_EQ(column[2], 9);
  EXPECT_EQ(column.data(), column.mutable_vec().data());
}

TEST(ColumnOwned, CopyIsDeep) {
  Column<double> original(Doubles({1.0, 2.0}));
  Column<double> copy(original);
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_NE(copy.data(), original.data());

  copy.at_mut(0) = 99.0;
  EXPECT_DOUBLE_EQ(original[0], 1.0);
  EXPECT_DOUBLE_EQ(copy[0], 99.0);
}

TEST(ColumnOwned, MoveTransfersAndEmptiesSource) {
  Column<double> source(Doubles({5.0, 6.0}));
  Column<double> target(std::move(source));
  ASSERT_EQ(target.size(), 2u);
  EXPECT_DOUBLE_EQ(target[1], 6.0);
  EXPECT_FALSE(target.borrowed());
  EXPECT_EQ(source.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.data(), nullptr);
}

TEST(ColumnBorrowed, AliasesBackingWithoutOwning) {
  const double backing[4] = {1.5, 2.5, 3.5, 4.5};
  auto column = Column<double>::Borrowed(backing, 4);
  EXPECT_TRUE(column.borrowed());
  EXPECT_EQ(column.size(), 4u);
  EXPECT_EQ(column.data(), backing);  // zero copy: same address
  EXPECT_DOUBLE_EQ(column[3], 4.5);
}

TEST(ColumnBorrowed, CopyAndMoveStayBorrowed) {
  const int32_t backing[3] = {10, 20, 30};
  auto column = Column<int32_t>::Borrowed(backing, 3);

  Column<int32_t> copy(column);
  EXPECT_TRUE(copy.borrowed());
  EXPECT_EQ(copy.data(), backing);  // copies alias, they don't materialize

  Column<int32_t> moved(std::move(copy));
  EXPECT_TRUE(moved.borrowed());
  EXPECT_EQ(moved.data(), backing);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(ColumnBorrowedDeathTest, MutationDies) {
  const double backing[2] = {1.0, 2.0};
  auto column = Column<double>::Borrowed(backing, 2);
  // Mapped sections are immutable by contract; every mutator must refuse
  // rather than copy-on-write behind the caller's paging budget.
  EXPECT_DEATH(column.mutable_vec(), "borrowed");
  EXPECT_DEATH(column.push_back(3.0), "borrowed");
  EXPECT_DEATH(column.resize(8), "borrowed");
  EXPECT_DEATH(column.clear(), "borrowed");
  EXPECT_DEATH(column.at_mut(0) = 9.0, "borrowed");
}

TEST(ColumnBytesTest, SplitsResidentFromMapped) {
  Column<double> owned(Doubles({1.0, 2.0, 3.0}));
  const int32_t backing[5] = {1, 2, 3, 4, 5};
  auto borrowed = Column<int32_t>::Borrowed(backing, 5);

  ColumnBytes bytes;
  bytes.Add(owned);
  bytes.Add(borrowed);
  EXPECT_EQ(bytes.resident, 3 * sizeof(double));
  EXPECT_EQ(bytes.mapped, 5 * sizeof(int32_t));

  ColumnBytes more;
  more.Add(owned);
  bytes += more;
  EXPECT_EQ(bytes.resident, 6 * sizeof(double));
  EXPECT_EQ(bytes.mapped, 5 * sizeof(int32_t));
}

}  // namespace
}  // namespace arsp
