// Copyright 2026 The ARSP Authors.

#include "src/geometry/point.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point origin(3);
  EXPECT_EQ(origin.dim(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(origin[i], 0.0);

  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[2], 3.0);

  p[1] = 7.5;
  EXPECT_EQ(p[1], 7.5);
}

TEST(PointTest, ArithmeticAndDot) {
  const Point a{1.0, 2.0};
  const Point b{3.0, 5.0};
  const Point diff = b - a;
  EXPECT_EQ(diff[0], 2.0);
  EXPECT_EQ(diff[1], 3.0);
  const Point sum = a + b;
  EXPECT_EQ(sum[0], 4.0);
  EXPECT_EQ(sum[1], 7.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 13.0);
}

TEST(PointTest, EqualityIsExact) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_NE((Point{1.0, 2.0}), (Point{1.0, 2.0000001}));
  EXPECT_NE((Point{1.0}), (Point{1.0, 0.0}));
}

TEST(PointTest, WeakDominance) {
  EXPECT_TRUE(DominatesWeak({1.0, 2.0}, {1.0, 2.0}));  // reflexive
  EXPECT_TRUE(DominatesWeak({1.0, 2.0}, {1.0, 3.0}));
  EXPECT_TRUE(DominatesWeak({0.0, 0.0}, {5.0, 5.0}));
  EXPECT_FALSE(DominatesWeak({1.0, 4.0}, {2.0, 3.0}));  // incomparable
  EXPECT_FALSE(DominatesWeak({2.0, 3.0}, {1.0, 4.0}));
}

TEST(PointTest, StrictDominanceRequiresImprovement) {
  EXPECT_FALSE(DominatesStrict({1.0, 2.0}, {1.0, 2.0}));  // equal: no
  EXPECT_TRUE(DominatesStrict({1.0, 2.0}, {1.0, 2.5}));
  EXPECT_FALSE(DominatesStrict({1.0, 2.5}, {1.0, 2.0}));
}

TEST(PointTest, DominanceTransitivity) {
  const Point a{0.0, 1.0, 2.0};
  const Point b{0.5, 1.0, 2.0};
  const Point c{0.5, 1.5, 2.5};
  ASSERT_TRUE(DominatesWeak(a, b));
  ASSERT_TRUE(DominatesWeak(b, c));
  EXPECT_TRUE(DominatesWeak(a, c));
}

TEST(PointTest, LexOrder) {
  EXPECT_TRUE(LexLess({1.0, 9.0}, {2.0, 0.0}));
  EXPECT_TRUE(LexLess({1.0, 1.0}, {1.0, 2.0}));
  EXPECT_FALSE(LexLess({1.0, 2.0}, {1.0, 2.0}));
  EXPECT_FALSE(LexLess({2.0, 0.0}, {1.0, 9.0}));
}

TEST(PointTest, ToStringIsReadable) {
  EXPECT_EQ((Point{1.0, 2.5}).ToString(), "(1, 2.5)");
  EXPECT_EQ(Point(0).ToString(), "()");
}

}  // namespace
}  // namespace arsp
