// Copyright 2026 The ARSP Authors.
//
// Robustness and invariant tests across the algorithm suite: irregular
// probabilities (not 1/k), near-one object masses, diagnostic counter
// sanity, DUAL vs DUAL-MS agreement, and a medium-size integration sweep.

#include <gtest/gtest.h>

#include "src/core/bnb_algorithm.h"
#include "src/core/dual2d_ms.h"
#include "src/core/dual_algorithm.h"
#include "src/core/kdtt_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "src/core/qdtt_algorithm.h"
#include "src/uncertain/generators.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomWr;
using testing_util::WrRegion;

// Objects with ragged, non-uniform probabilities summing to assorted totals.
UncertainDataset RaggedDataset(int num_objects, int dim, uint64_t seed) {
  Rng rng(seed);
  UncertainDatasetBuilder builder(dim);
  for (int j = 0; j < num_objects; ++j) {
    const int count = rng.UniformInt(1, 5);
    // Random masses normalized to a total in (0, 1], occasionally exactly 1.
    std::vector<double> raw(static_cast<size_t>(count));
    double sum = 0.0;
    for (double& v : raw) {
      v = rng.Uniform(0.05, 1.0);
      sum += v;
    }
    const double total = (j % 3 == 0) ? 1.0 : rng.Uniform(0.3, 0.999);
    std::vector<Point> points;
    std::vector<double> probs;
    for (int i = 0; i < count; ++i) {
      Point p(dim);
      for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
      points.push_back(std::move(p));
      probs.push_back(raw[static_cast<size_t>(i)] / sum * total);
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  return std::move(builder.Build()).value();
}

TEST(RobustnessTest, RaggedProbabilitiesAgreeAcrossAlgorithms) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset = RaggedDataset(40, dim, seed);
    const PreferenceRegion region = WrRegion(dim, dim - 1);
    const ArspResult reference = ComputeArspLoop(dataset, region);
    EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region)), 1e-8)
        << seed;
    EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(dataset, region)), 1e-8)
        << seed;
    EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(dataset, region)), 1e-8)
        << seed;
  }
}

TEST(RobustnessTest, NearOneObjectMassBehavesLikeOne) {
  // An object whose mass is 1 - 1e-12 sits inside the shared σ≈1 tolerance:
  // everything it fully dominates must come out (near) zero in every
  // algorithm, with no disagreement from the incremental β bookkeeping.
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.1, 0.1}, Point{0.15, 0.15}},
                    {0.5, 0.5 - 1e-12});
  builder.AddSingleton(Point{0.9, 0.9}, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  for (const ArspResult& result :
       {ComputeArspLoop(*dataset, region), ComputeArspKdtt(*dataset, region),
        ComputeArspBnb(*dataset, region)}) {
    EXPECT_LE(result.instance_probs[2], 1e-9);
  }
}

TEST(RobustnessTest, CountersAreInternallyConsistent) {
  const UncertainDataset dataset = RaggedDataset(60, 3, 42);
  const PreferenceRegion region = WrRegion(3, 2);

  const ArspResult kdtt = ComputeArspKdtt(dataset, region);
  EXPECT_GT(kdtt.nodes_visited, 0);
  EXPECT_LE(kdtt.nodes_pruned, kdtt.nodes_visited);
  EXPECT_GT(kdtt.dominance_tests, 0);

  const ArspResult bnb = ComputeArspBnb(dataset, region);
  EXPECT_GT(bnb.nodes_visited, 0);

  const ArspResult loop = ComputeArspLoop(dataset, region);
  // LOOP performs at most one test per ordered candidate pair.
  EXPECT_LE(loop.dominance_tests,
            static_cast<int64_t>(dataset.num_instances()) *
                dataset.num_instances());
}

TEST(RobustnessTest, DualAndDual2dMsAgreeOnSingleInstanceData) {
  const UncertainDataset iip = GenerateIipLike(200, 5);
  const auto wr = WeightRatioConstraints::Create({{0.7, 1.4}}).value();
  const ArspResult via_dual = ComputeArspDual(iip, wr);
  const auto index = Dual2dMs::Build(iip);
  ASSERT_TRUE(index.ok());
  EXPECT_LT(MaxAbsDiff(via_dual, index->Query(0.7, 1.4)), 1e-9);
}

TEST(RobustnessTest, MediumScaleIntegrationSweep) {
  // A few thousand instances: KDTT+, QDTT+ and B&B against each other
  // (LOOP as reference is too slow here; pairwise agreement between three
  // independently-structured algorithms is the check).
  SyntheticConfig config;
  config.num_objects = 400;
  config.max_instances = 12;
  config.dim = 4;
  config.phi = 0.15;
  config.distribution = Distribution::kAntiCorrelated;
  config.seed = 77;
  const UncertainDataset dataset = GenerateSynthetic(config);
  ASSERT_GT(dataset.num_instances(), 1500);
  const PreferenceRegion region = WrRegion(4, 3);

  const ArspResult kdtt = ComputeArspKdtt(dataset, region);
  const ArspResult qdtt = ComputeArspQdtt(dataset, region);
  const ArspResult bnb = ComputeArspBnb(dataset, region);
  EXPECT_LT(MaxAbsDiff(kdtt, qdtt), 1e-8);
  EXPECT_LT(MaxAbsDiff(kdtt, bnb), 1e-8);
  EXPECT_EQ(CountNonZero(kdtt), CountNonZero(bnb));
}

TEST(RobustnessTest, ScaleInvarianceOfDominance) {
  // Affinely scaling all coordinates by a positive factor preserves the
  // F-dominance relation, hence all rskyline probabilities.
  const UncertainDataset dataset = RaggedDataset(30, 3, 9);
  UncertainDatasetBuilder scaled_builder(3);
  for (int j = 0; j < dataset.num_objects(); ++j) {
    const auto [begin, end] = dataset.object_range(j);
    std::vector<Point> points;
    std::vector<double> probs;
    for (int i = begin; i < end; ++i) {
      Point p = dataset.instance(i).point;
      for (int k = 0; k < 3; ++k) p[k] = p[k] * 1000.0;
      points.push_back(std::move(p));
      probs.push_back(dataset.instance(i).prob);
    }
    scaled_builder.AddObject(std::move(points), std::move(probs));
  }
  const auto scaled = scaled_builder.Build();
  ASSERT_TRUE(scaled.ok());
  const PreferenceRegion region = WrRegion(3, 2);
  EXPECT_LT(MaxAbsDiff(ComputeArspKdtt(dataset, region),
                       ComputeArspKdtt(*scaled, region)),
            1e-8);
}

TEST(RobustnessTest, TranslationInvarianceUnderWeightRatios) {
  // Weight-ratio dominance (Theorem 5) is translation invariant: shifting
  // all instances by a constant vector preserves the relation.
  Rng rng(15);
  const auto wr = RandomWr(3, 21);
  for (int trial = 0; trial < 100; ++trial) {
    Point t(3), s(3), shift(3);
    for (int k = 0; k < 3; ++k) {
      t[k] = rng.Uniform01();
      s[k] = rng.Uniform01();
      shift[k] = rng.Uniform(-5.0, 5.0);
    }
    EXPECT_EQ(FDominatesWeightRatio(t, s, wr),
              FDominatesWeightRatio(t + shift, s + shift, wr));
  }
}

}  // namespace
}  // namespace arsp
