// Copyright 2026 The ARSP Authors.
//
// AdmissionController policy, driven by an injected clock: token-bucket
// depletion and refill per client, the global pending-work budget, and the
// retry hints a RETRY_LATER reply carries. The wire-level path (a real
// server answering kRetryLater, a client surfacing kUnavailable) lives in
// cluster_server_test.cc; this file pins the policy arithmetic.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "src/cluster/admission.h"

namespace arsp {
namespace cluster {
namespace {

using Clock = AdmissionController::Clock;

// A hand-cranked clock: tests advance time explicitly.
struct FakeClock {
  Clock::time_point now = Clock::time_point{};
  void Advance(double seconds) {
    now += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }
  AdmissionController::NowFn fn() {
    return [this] { return now; };
  }
};

bool Admit(AdmissionController& gate, uint64_t client,
           uint32_t* retry_ms = nullptr, std::string* why = nullptr) {
  uint32_t retry = 0;
  std::string reason;
  const bool ok = gate.Admit(client, &retry, &reason);
  if (retry_ms != nullptr) *retry_ms = retry;
  if (why != nullptr) *why = reason;
  return ok;
}

TEST(Admission, DisabledOptionsAdmitEverything) {
  AdmissionController gate(AdmissionOptions{});  // both budgets off
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(Admit(gate, 1));
  EXPECT_EQ(gate.admitted(), 1000);
  EXPECT_EQ(gate.denied(), 0);
  EXPECT_EQ(gate.pending(), 1000);  // nothing released yet
}

TEST(Admission, BurstDepletesThenRefillsAtTheConfiguredRate) {
  FakeClock clock;
  AdmissionOptions options;
  options.client_qps = 10.0;
  options.client_burst = 4.0;
  AdmissionController gate(options, clock.fn());

  // A new client starts with a full burst: exactly 4 admits.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Admit(gate, 7)) << "burst admit " << i;
    gate.Release(7);
  }
  uint32_t retry = 0;
  std::string reason;
  ASSERT_FALSE(Admit(gate, 7, &retry, &reason));
  // One token accrues in 1/qps = 100ms; the hint rounds up and must never
  // suggest an immediate retry that would be denied again.
  EXPECT_GE(retry, 100u);
  EXPECT_LE(retry, 101u);
  EXPECT_NE(reason.find("rate"), std::string::npos);

  // 100ms later exactly one token is back — one admit, then denied again.
  clock.Advance(0.1);
  EXPECT_TRUE(Admit(gate, 7));
  gate.Release(7);
  EXPECT_FALSE(Admit(gate, 7));

  // A long idle period refills to the burst cap, not beyond.
  clock.Advance(60.0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Admit(gate, 7)) << "post-idle admit " << i;
    gate.Release(7);
  }
  EXPECT_FALSE(Admit(gate, 7));
  EXPECT_EQ(gate.denied(), 3);
}

TEST(Admission, ClientsHaveIndependentBuckets) {
  FakeClock clock;
  AdmissionOptions options;
  options.client_qps = 1.0;
  options.client_burst = 1.0;
  AdmissionController gate(options, clock.fn());
  ASSERT_TRUE(Admit(gate, 1));
  EXPECT_FALSE(Admit(gate, 1));  // client 1 exhausted...
  EXPECT_TRUE(Admit(gate, 2));   // ...client 2 unaffected
}

TEST(Admission, PendingBudgetBoundsInFlightWork) {
  AdmissionOptions options;
  options.max_pending = 2;
  options.retry_after_ms = 25;
  AdmissionController gate(options);

  ASSERT_TRUE(Admit(gate, 1));
  ASSERT_TRUE(Admit(gate, 2));
  uint32_t retry = 0;
  std::string reason;
  ASSERT_FALSE(Admit(gate, 3, &retry, &reason));
  EXPECT_EQ(retry, 25u);
  EXPECT_NE(reason.find("pending"), std::string::npos);
  EXPECT_EQ(gate.pending(), 2);

  // Releasing frees a slot for anyone.
  gate.Release(1);
  EXPECT_TRUE(Admit(gate, 3));
  EXPECT_EQ(gate.pending(), 2);
  gate.Release(2);
  gate.Release(3);
  EXPECT_EQ(gate.pending(), 0);
  EXPECT_EQ(gate.admitted(), 3);
  EXPECT_EQ(gate.denied(), 1);
}

TEST(Admission, PendingDenialDoesNotBurnRateTokens) {
  FakeClock clock;
  AdmissionOptions options;
  options.client_qps = 10.0;
  options.client_burst = 1.0;
  options.max_pending = 1;
  AdmissionController gate(options, clock.fn());

  ASSERT_TRUE(Admit(gate, 1));       // takes the only pending slot + a token
  ASSERT_FALSE(Admit(gate, 2));      // pending-denied, BEFORE the bucket
  gate.Release(1);
  // Client 2's untouched burst token must still be there.
  EXPECT_TRUE(Admit(gate, 2));
}

}  // namespace
}  // namespace cluster
}  // namespace arsp
