// Copyright 2026 The ARSP Authors.
//
// The central property suite: every ARSP algorithm must produce the same
// probabilities. LOOP (validated against ENUM in enum_loop_test) acts as the
// reference; KDTT, KDTT+, QDTT+, B&B, and DUAL are compared against it over
// a parameterized sweep of dimensionality, distribution, constraint family,
// instance counts, ϕ, and tie-heavy grid data. The RegistrySweep tests then
// iterate SolverRegistry::Names() so any solver registered later is held to
// the same standard automatically: agree with ENUM, or reject the context
// with a clean FailedPrecondition.

#include <gtest/gtest.h>

#include "src/core/bnb_algorithm.h"
#include "src/core/dual_algorithm.h"
#include "src/core/enum_algorithm.h"
#include "src/core/kdtt_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "src/core/qdtt_algorithm.h"
#include "src/core/solver.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::ImRegion;
using testing_util::RandomDataset;
using testing_util::RandomWr;
using testing_util::WrRegion;

struct SweepCase {
  int dim;
  int num_objects;
  int max_instances;
  double phi;
  bool grid;
  uint64_t seed;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "d=" << c.dim << " m=" << c.num_objects << " cnt=" << c.max_instances
      << " phi=" << c.phi << (c.grid ? " grid" : "") << " seed=" << c.seed;
}

class EquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EquivalenceSweep, AllAlgorithmsAgreeUnderWeakRanking) {
  const SweepCase& c = GetParam();
  const UncertainDataset dataset = RandomDataset(
      c.num_objects, c.max_instances, c.dim, c.phi, c.seed, c.grid);
  const PreferenceRegion region = WrRegion(c.dim, c.dim - 1);

  const ArspResult reference = ComputeArspLoop(dataset, region);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region,
                                                  {.integrated = false})),
            1e-8)
      << "KDTT";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region,
                                                  {.integrated = true})),
            1e-8)
      << "KDTT+";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(dataset, region)), 1e-8)
      << "QDTT+";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(dataset, region)), 1e-8)
      << "B&B";
}

TEST_P(EquivalenceSweep, AllAlgorithmsAgreeUnderWeightRatios) {
  const SweepCase& c = GetParam();
  const UncertainDataset dataset = RandomDataset(
      c.num_objects, c.max_instances, c.dim, c.phi, c.seed + 1000, c.grid);
  const WeightRatioConstraints wr = RandomWr(c.dim, c.seed);
  const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);

  const ArspResult reference = ComputeArspLoop(dataset, region);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region)), 1e-8)
      << "KDTT+";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(dataset, region)), 1e-8)
      << "QDTT+";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(dataset, region)), 1e-8)
      << "B&B";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspDual(dataset, wr)), 1e-8)
      << "DUAL";
}

TEST_P(EquivalenceSweep, AllAlgorithmsAgreeUnderInteractiveConstraints) {
  const SweepCase& c = GetParam();
  const UncertainDataset dataset = RandomDataset(
      c.num_objects, c.max_instances, c.dim, c.phi, c.seed + 2000, c.grid);
  const PreferenceRegion region = ImRegion(c.dim, c.dim, c.seed);

  const ArspResult reference = ComputeArspLoop(dataset, region);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region)), 1e-8)
      << "KDTT+";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(dataset, region)), 1e-8)
      << "QDTT+";
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(dataset, region)), 1e-8)
      << "B&B";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Values(
        SweepCase{2, 20, 3, 0.0, false, 1}, SweepCase{2, 20, 3, 0.0, true, 2},
        SweepCase{2, 40, 5, 0.5, false, 3}, SweepCase{3, 20, 3, 0.0, false, 4},
        SweepCase{3, 30, 4, 0.3, true, 5}, SweepCase{3, 50, 2, 1.0, false, 6},
        SweepCase{4, 20, 3, 0.0, false, 7}, SweepCase{4, 30, 4, 0.5, true, 8},
        SweepCase{5, 20, 3, 0.0, false, 9},
        SweepCase{5, 25, 3, 0.2, false, 10},
        SweepCase{6, 15, 3, 0.0, false, 11},
        SweepCase{2, 60, 6, 0.1, true, 12}));

TEST(EquivalenceEdgeCases, SingleInstancePerObjectPhiOne) {
  // The IIP regime: every object is one instance with Σp < 1; B&B's pruning
  // set stays empty (the paper notes B&B degenerates toward LOOP here).
  const UncertainDataset dataset = RandomDataset(40, 1, 2, 1.0, 21);
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult reference = ComputeArspLoop(dataset, region);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region)), 1e-9);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(dataset, region)), 1e-9);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(dataset, region)), 1e-9);
}

TEST(EquivalenceEdgeCases, ManyDuplicatesAcrossObjects) {
  // Every object concentrated on two shared points: maximal tie stress.
  UncertainDatasetBuilder builder(2);
  for (int j = 0; j < 10; ++j) {
    builder.AddObject({Point{0.5, 0.5}, Point{0.25, 0.75}}, {0.5, 0.5});
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult reference = ComputeArspEnum(*dataset, region, 2e7);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspLoop(*dataset, region)), 1e-9);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(*dataset, region)), 1e-9);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(*dataset, region)), 1e-9);
  EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(*dataset, region)), 1e-9);
}

TEST(EquivalenceEdgeCases, EnumCrossCheckOnTinyInputs) {
  // Direct ENUM comparison for the tree and B&B algorithms on inputs small
  // enough to enumerate.
  for (uint64_t seed = 50; seed < 58; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 2);
    const UncertainDataset dataset = RandomDataset(6, 3, dim, 0.4, seed);
    const PreferenceRegion region = WrRegion(dim, dim - 1);
    const ArspResult reference = ComputeArspEnum(dataset, region);
    EXPECT_LT(MaxAbsDiff(reference, ComputeArspKdtt(dataset, region)), 1e-9)
        << seed;
    EXPECT_LT(MaxAbsDiff(reference, ComputeArspQdtt(dataset, region)), 1e-9)
        << seed;
    EXPECT_LT(MaxAbsDiff(reference, ComputeArspBnb(dataset, region)), 1e-9)
        << seed;
  }
}

TEST(EquivalenceEdgeCases, ResultSizeConsistentAcrossAlgorithms) {
  const UncertainDataset dataset = RandomDataset(30, 4, 3, 0.2, 77);
  const PreferenceRegion region = WrRegion(3, 2);
  const int reference = CountNonZero(ComputeArspLoop(dataset, region));
  EXPECT_EQ(reference, CountNonZero(ComputeArspKdtt(dataset, region)));
  EXPECT_EQ(reference, CountNonZero(ComputeArspQdtt(dataset, region)));
  EXPECT_EQ(reference, CountNonZero(ComputeArspBnb(dataset, region)));
}

// ---------------------------------------------------------------------------
// Registry sweep: every solver the registry knows about — including ones a
// future PR adds — must either agree with ENUM or refuse the context with a
// clean FailedPrecondition. One ExecutionContext is shared per case, so the
// sweep also exercises preprocessing reuse across solvers.

void SweepRegistryAgainstEnum(const UncertainDataset& dataset,
                              ExecutionContext& context) {
  ASSERT_LE(dataset.NumPossibleWorlds(), 2e7) << "dataset too big for ENUM";
  auto enum_solver = SolverRegistry::Create("enum");
  ASSERT_TRUE(enum_solver.ok());
  auto reference = (*enum_solver)->Solve(context);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    const Status applicable = (*solver)->ValidateContext(context);
    auto result = (*solver)->Solve(context);
    if (!applicable.ok()) {
      // Inapplicable solvers must fail cleanly, never compute garbage.
      EXPECT_FALSE(result.ok()) << name;
      EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
          << name << ": " << result.status().ToString();
      continue;
    }
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_LT(MaxAbsDiff(*reference, *result), 1e-8) << name;
    EXPECT_EQ(context.last_stats().solver, name);
  }
}

TEST(RegistrySweep, WeightRatioConstraints) {
  for (uint64_t seed = 300; seed < 305; ++seed) {
    SCOPED_TRACE(seed);
    const int dim = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset = RandomDataset(7, 3, dim, 0.4, seed);
    ExecutionContext context(dataset, RandomWr(dim, seed));
    SweepRegistryAgainstEnum(dataset, context);
  }
}

TEST(RegistrySweep, WeightRatioSingleInstanceAllSolversApply) {
  // d = 2 with single-instance objects: the regime where even DUAL-2D-MS
  // participates, so every registered solver is compared against ENUM.
  for (uint64_t seed = 400; seed < 403; ++seed) {
    SCOPED_TRACE(seed);
    const UncertainDataset dataset = RandomDataset(10, 1, 2, 0.5, seed);
    ExecutionContext context(dataset, RandomWr(2, seed));
    auto dual2d = SolverRegistry::Create("dual-2d-ms");
    ASSERT_TRUE(dual2d.ok());
    EXPECT_TRUE((*dual2d)->ValidateContext(context).ok());
    SweepRegistryAgainstEnum(dataset, context);
  }
}

TEST(RegistrySweep, WeakRankingConstraints) {
  for (uint64_t seed = 500; seed < 505; ++seed) {
    SCOPED_TRACE(seed);
    const int dim = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset =
        RandomDataset(7, 3, dim, 0.4, seed, seed % 2 == 0);
    ExecutionContext context(dataset, WrRegion(dim, dim - 1));
    SweepRegistryAgainstEnum(dataset, context);
  }
}

}  // namespace
}  // namespace arsp
