// Copyright 2026 The ARSP Authors.
//
// Engine-level goal pushdown: routing (capability-gated, allow_pushdown
// override, instance-level goals stay full), the result-cache completeness
// rules — a goal-pruned partial result is cached only under its goal key
// and is NEVER returned for a full or different-goal request, while a
// cached full result IS reused (sliced) for derived goals — and concurrent
// SolveBatch with mixed goals over one pooled context (the TSan target for
// goal-scoped child contexts).

#include "src/core/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/queries.h"
#include "src/uncertain/generators.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomWr;

// NBA-like Fig. 6 data, small enough for tests but rich enough that every
// pushdown solver provably skips work (goal-pruned results are partial).
std::shared_ptr<const UncertainDataset> NbaData(int players = 60) {
  return std::make_shared<const UncertainDataset>(
      GenerateNbaLike(players, 4, 1003, nullptr));
}

QueryRequest ThresholdRequest(DatasetHandle handle, double p,
                              const std::string& solver = "kdtt+") {
  QueryRequest request;
  request.dataset = handle;
  request.constraints = ConstraintSpec::WeightRatios(RandomWr(4, 7));
  request.solver = solver;
  request.derived.kind = DerivedKind::kObjectsAboveThreshold;
  request.derived.threshold = p;
  return request;
}

void ExpectSameRanked(const std::vector<std::pair<int, double>>& a,
                      const std::vector<std::pair<int, double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << i;
    EXPECT_NEAR(a[i].second, b[i].second, 1e-12) << i;
  }
}

TEST(EngineGoalPushdown, PushdownExecutesAndMatchesTheFallback) {
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData());

  QueryRequest pushed = ThresholdRequest(handle, 0.4);
  pushed.use_cache = false;
  auto with = engine.Solve(pushed);
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->pushdown);
  EXPECT_FALSE(with->result->is_complete());
  EXPECT_GT(with->stats.objects_pruned, 0);
  EXPECT_LT(with->stats.bound_refinements,
            engine.dataset(handle)->num_instances());

  QueryRequest fallback = pushed;
  fallback.allow_pushdown = false;
  auto without = engine.Solve(fallback);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->pushdown);
  EXPECT_TRUE(without->result->is_complete());
  EXPECT_EQ(without->stats.bound_refinements, 0);
  ExpectSameRanked(without->ranked, with->ranked);
}

TEST(EngineGoalPushdown, PushdownRequiresTheCapability) {
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData(30));
  // LOOP declares no kCapGoalPushdown: the engine must fall back.
  auto response = engine.Solve(ThresholdRequest(handle, 0.4, "loop"));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->pushdown);
  EXPECT_TRUE(response->result->is_complete());
}

TEST(EngineGoalPushdown, DegenerateTopKValuesStaySafe) {
  // k == 0 and k < 0 reach the solver as goals the pruner must deactivate
  // (k == 0 once triggered an out-of-bounds τ selection); answers match
  // the historical TopKObjects semantics: empty, and rank-everything.
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData(30));
  QueryRequest request = ThresholdRequest(handle, 0.0);
  request.derived.kind = DerivedKind::kTopKObjects;
  request.derived.k = 0;
  auto empty = engine.Solve(request);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->ranked.empty());
  EXPECT_TRUE(empty->result->is_complete());
  request.derived.k = -1;
  request.use_cache = false;
  auto all = engine.Solve(request);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->pushdown);  // "all objects" is full work by definition
  EXPECT_EQ(static_cast<int>(all->ranked.size()),
            engine.dataset(handle)->num_objects());
}

TEST(EngineGoalPushdown, InstanceLevelGoalsStayFull) {
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData(30));
  QueryRequest request = ThresholdRequest(handle, 0.4);
  request.derived.kind = DerivedKind::kTopKInstances;
  request.derived.k = 5;
  auto response = engine.Solve(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->pushdown);
  ASSERT_TRUE(response->result->is_complete());
  EXPECT_EQ(response->ranked, TopKInstances(*response->result, 5));
}

TEST(EngineGoalPushdown, PartialResultIsNeverServedForFullOrOtherGoals) {
  // The cache-completeness regression: a goal-pruned partial entry must be
  // invisible to every request except its exact goal.
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData());

  auto pushed = engine.Solve(ThresholdRequest(handle, 0.4));
  ASSERT_TRUE(pushed.ok());
  ASSERT_TRUE(pushed->pushdown);
  ASSERT_FALSE(pushed->cache_hit);
  // The premise of the regression: the cached entry IS partial.
  ASSERT_FALSE(pushed->result->is_complete());

  // A full request with identical dataset/constraints/solver/options must
  // NOT hit that entry — it solves fresh and gets a complete result.
  QueryRequest full = ThresholdRequest(handle, 0.4);
  full.derived = DerivedSpec{};
  auto fresh = engine.Solve(full);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cache_hit);
  EXPECT_TRUE(fresh->result->is_complete());

  // A different-goal request must not see it either (it now subsumes from
  // the full entry cached by the previous solve instead).
  auto other_goal = engine.Solve(ThresholdRequest(handle, 0.7));
  ASSERT_TRUE(other_goal.ok());
  EXPECT_TRUE(other_goal->result->is_complete());
  ExpectSameRanked(
      other_goal->ranked,
      ObjectsAboveThreshold(*fresh->result, *engine.dataset(handle), 0.7));

  // The exact same goal DOES reuse the partial entry.
  auto again = engine.Solve(ThresholdRequest(handle, 0.4));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_TRUE(again->pushdown);
  EXPECT_EQ(again->result.get(), pushed->result.get());
  ExpectSameRanked(again->ranked, pushed->ranked);
}

TEST(EngineGoalPushdown, CachedFullResultIsSlicedForDerivedGoals) {
  // Subsumption: a complete cached result answers every derived goal.
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData(40));
  QueryRequest full = ThresholdRequest(handle, 0.4);
  full.derived = DerivedSpec{};
  auto first = engine.Solve(full);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->cache_hit);

  QueryRequest topk = full;
  topk.derived.kind = DerivedKind::kTopKObjects;
  topk.derived.k = 5;
  auto sliced = engine.Solve(topk);
  ASSERT_TRUE(sliced.ok());
  EXPECT_TRUE(sliced->cache_hit);
  EXPECT_FALSE(sliced->pushdown);  // served post hoc from the full entry
  EXPECT_EQ(sliced->result.get(), first->result.get());
  EXPECT_EQ(sliced->ranked,
            TopKObjects(*first->result, *engine.dataset(handle), 5));
}

TEST(EngineGoalPushdown, CountControlledMatchesQueriesHUnderPushdown) {
  ArspEngine engine;
  const DatasetHandle handle = engine.AddDataset(NbaData());
  QueryRequest request = ThresholdRequest(handle, 0.0);
  request.derived.kind = DerivedKind::kCountControlled;
  request.derived.max_objects = 5;
  request.use_cache = false;
  auto controlled = engine.Solve(request);
  ASSERT_TRUE(controlled.ok());
  EXPECT_TRUE(controlled->pushdown);

  QueryRequest fallback = request;
  fallback.allow_pushdown = false;
  auto oracle = engine.Solve(fallback);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(controlled->count_threshold, oracle->count_threshold, 1e-12);
  EXPECT_EQ(oracle->count_threshold,
            ThresholdForObjectCount(*oracle->result,
                                    *engine.dataset(handle), 5));
  ExpectSameRanked(controlled->ranked, oracle->ranked);
  EXPECT_GE(controlled->ranked.size(), 5u);
}

TEST(EngineGoalPushdown, MixedGoalsShareOnePooledContextConcurrently) {
  // The TSan target: many concurrent requests with different goals and
  // solvers against ONE (dataset, constraints) pair. Pooled contexts stay
  // goal-free; each pushdown request derives a private goal-scoped child,
  // so the pool must still hold exactly one context afterwards.
  ArspEngine engine;
  const auto data = NbaData(40);
  const DatasetHandle handle = engine.AddDataset(data);
  const char* solvers[] = {"kdtt+", "mwtt", "qdtt+", "bnb"};
  std::vector<QueryRequest> requests;
  for (int round = 0; round < 3; ++round) {
    for (const char* solver : solvers) {
      QueryRequest full = ThresholdRequest(handle, 0.4, solver);
      full.derived = DerivedSpec{};
      full.use_cache = round % 2 == 0;
      requests.push_back(full);

      QueryRequest threshold = ThresholdRequest(handle, 0.4, solver);
      threshold.use_cache = round % 2 == 0;
      requests.push_back(threshold);

      QueryRequest topk = ThresholdRequest(handle, 0.4, solver);
      topk.derived.kind = DerivedKind::kTopKObjects;
      topk.derived.k = 5;
      topk.use_cache = round % 2 == 1;
      requests.push_back(topk);
    }
  }
  const auto outcomes = engine.SolveBatch(requests);

  ArspEngine serial_engine;
  const DatasetHandle serial_handle = serial_engine.AddDataset(data);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok())
        << i << ": " << outcomes[i].status().ToString();
    QueryRequest serial_request = requests[i];
    serial_request.dataset = serial_handle;
    const auto serial = serial_engine.Solve(serial_request);
    ASSERT_TRUE(serial.ok()) << i;
    ExpectSameRanked(outcomes[i]->ranked, serial->ranked);
  }
  EXPECT_EQ(engine.pooled_contexts(), 1u);
}

TEST(EngineGoalPushdown, GoalsPropagateThroughViewSweeps) {
  // A Fig. 6-style m% sweep with --topk semantics: every prefix view's
  // pushdown answer must match its own post-hoc answer, the view contexts
  // still derive from one base build, and goal children are never pooled.
  ArspEngine engine;
  const DatasetHandle base = engine.AddDataset(NbaData());
  const int m = engine.dataset(base)->num_objects();
  for (int pct : {40, 70, 100}) {
    SCOPED_TRACE(pct);
    const int count = std::max(1, m * pct / 100);
    auto view_handle = engine.AddView(base, ViewSpec::Prefix(count));
    ASSERT_TRUE(view_handle.ok());
    QueryRequest request = ThresholdRequest(*view_handle, 0.0);
    request.derived.kind = DerivedKind::kTopKObjects;
    request.derived.k = 5;
    request.use_cache = false;
    auto pushed = engine.Solve(request);
    ASSERT_TRUE(pushed.ok());
    EXPECT_TRUE(pushed->pushdown);

    QueryRequest fallback = request;
    fallback.allow_pushdown = false;
    auto oracle = engine.Solve(fallback);
    ASSERT_TRUE(oracle.ok());
    ExpectSameRanked(pushed->ranked, oracle->ranked);
  }
  // One full score mapping on the base; prefix and goal children reuse it.
  ExecutionContext::IndexBuildStats stats = engine.index_stats(base);
  EXPECT_EQ(stats.score_maps, 1);
}

}  // namespace
}  // namespace arsp
