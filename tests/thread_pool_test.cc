// Copyright 2026 The ARSP Authors.
//
// ThreadPool unit tests, including the hardware_concurrency()==0 fallback:
// the standard allows std::thread::hardware_concurrency() to return 0 when
// the platform cannot tell, and DefaultConcurrency must clamp that to a
// sane worker count (≥ 1) instead of letting callers build a degenerate
// pool by accident.

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <thread>

#include "src/common/thread_pool.h"

namespace arsp {
namespace {

TEST(ThreadPoolTest, DefaultConcurrencyIsAlwaysPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1);
  // When the platform reports a count, DefaultConcurrency passes it
  // through; when it reports 0, the fallback (≥ 1) is used. Either way the
  // result can never be smaller than both candidates.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(ThreadPool::DefaultConcurrency(), static_cast<int>(hw));
  } else {
    EXPECT_EQ(ThreadPool::DefaultConcurrency(),
              ThreadPool::kFallbackConcurrency);
  }
  static_assert(ThreadPool::kFallbackConcurrency >= 1,
                "fallback must give at least one worker");
}

TEST(ThreadPoolTest, NonPositiveRequestsClampToOneWorker) {
  // The 0 that a hardware_concurrency()-derived value used to smuggle in.
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-8);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(ThreadPool::DefaultConcurrency());
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultConcurrency());
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  std::latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1, std::memory_order_relaxed);
      latch.count_down();
    });
  }
  latch.wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace arsp
