// Copyright 2026 The ARSP Authors.
//
// The parallel determinism contract, swept across the registry: for every
// solver advertising kCapIntraQueryParallel, a parallel solve — any thread
// count, base context or derived prefix/subset view — produces an
// instance-probability vector memcmp-identical to the serial solve, and
// deterministic task counts run to run. Goal-scoped solves (top-k /
// threshold / count-controlled pushdown) must answer identically to the
// serial pushdown solve: exact object identity and order, probabilities
// within the documented β-bookkeeping drift (epoch-published pruning
// snapshots may skip different subtrees at different times, but the decided
// answer set is a fixpoint independent of scheduling).
//
// Also the TSan target for the executor: concurrent SolveBatch of parallel
// queries sharing one pooled ExecutionContext, with the batch pool and the
// intra-query arenas drawing from the same pinned core budget.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/task_arena.h"
#include "src/core/engine.h"
#include "src/core/queries.h"
#include "src/core/solver.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::RandomWr;
using testing_util::WrRegion;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

// Probabilities of goal-pushed answers may carry per-run β drift (skipped
// subtrees depend on when pruning snapshots publish); identity and order
// may not.
constexpr double kDriftTolerance = 1e-12;

class ScopedBudget {
 public:
  explicit ScopedBudget(int total) {
    internal::SetCoreBudgetTotalForTesting(total);
  }
  ~ScopedBudget() { internal::SetCoreBudgetTotalForTesting(0); }
};

std::unique_ptr<ArspSolver> MakeSolver(const std::string& name,
                                       int parallelism) {
  auto solver = SolverRegistry::Create(name);
  EXPECT_TRUE(solver.ok()) << name;
  if (!solver.ok()) return nullptr;
  if (parallelism > 0) {
    SolverOptions options;
    options.SetInt("parallelism", parallelism);
    const Status configured = (*solver)->Configure(options);
    EXPECT_TRUE(configured.ok()) << name << ": " << configured.ToString();
    if (!configured.ok()) return nullptr;
  }
  return std::move(*solver);
}

void ExpectBitIdentical(const ArspResult& serial, const ArspResult& parallel,
                        const std::string& label) {
  ASSERT_EQ(serial.instance_probs.size(), parallel.instance_probs.size())
      << label;
  EXPECT_EQ(std::memcmp(serial.instance_probs.data(),
                        parallel.instance_probs.data(),
                        serial.instance_probs.size() * sizeof(double)),
            0)
      << label << ": parallel probabilities diverged from serial";
}

void ExpectRankedEquivalent(
    const std::vector<std::pair<int, double>>& serial,
    const std::vector<std::pair<int, double>>& parallel,
    const std::string& label) {
  ASSERT_EQ(serial.size(), parallel.size()) << label;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first) << label << " rank " << i;
    EXPECT_NEAR(serial[i].second, parallel[i].second, kDriftTolerance)
        << label << " rank " << i;
  }
}

// Full-goal sweep over one context: serial vs every thread count, bitwise;
// a repeated run checks the task-spawn count is deterministic (steal counts
// are scheduling noise and deliberately never compared).
void SweepFullSolve(const std::string& name, ExecutionContext& context) {
  SCOPED_TRACE(name);
  auto serial_solver = MakeSolver(name, 0);
  ASSERT_NE(serial_solver, nullptr);
  if (!serial_solver->ValidateContext(context).ok()) return;
  auto serial = serial_solver->Solve(context);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    ScopedBudget budget(threads);
    auto solver = MakeSolver(name, threads);
    ASSERT_NE(solver, nullptr);
    auto parallel = solver->Solve(context);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBitIdentical(*serial, *parallel,
                       name + "/t" + std::to_string(threads));
    if (threads >= 2) {
      // The pinned budget grants exactly `threads` workers, so the worker
      // count and the frontier's task decomposition are deterministic.
      EXPECT_EQ(parallel->parallel_workers, threads);
      auto rerun = solver->Solve(context);
      ASSERT_TRUE(rerun.ok());
      EXPECT_EQ(parallel->tasks_spawned, rerun->tasks_spawned)
          << name << ": task decomposition drifted between runs";
      ExpectBitIdentical(*serial, *rerun, name + "/rerun");
    } else {
      EXPECT_EQ(parallel->tasks_stolen, 0);
    }
  }
}

// Goal-pushdown sweep: parallel pushed answers must match serial pushed
// answers for every goal family.
void SweepGoalSolves(const std::string& name,
                     std::shared_ptr<ExecutionContext> full_context) {
  SCOPED_TRACE(name);
  auto probe = MakeSolver(name, 0);
  ASSERT_NE(probe, nullptr);
  if (!probe->ValidateContext(*full_context).ok()) return;
  const DatasetView& view = full_context->view();
  const std::vector<QueryGoal> goals = {
      QueryGoal::TopK(3),
      QueryGoal::Threshold(0.25),
      QueryGoal::CountControlled(3),
  };
  for (const QueryGoal& goal : goals) {
    SCOPED_TRACE(goal.ToString());
    auto goal_context = ExecutionContext::Derive(full_context, view, goal);
    auto serial_solver = MakeSolver(name, 0);
    ASSERT_NE(serial_solver, nullptr);
    auto serial = serial_solver->Solve(*goal_context);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    double serial_threshold = 0.0;
    const auto serial_ranked =
        AnswerGoal(*serial, view, goal, &serial_threshold);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE(threads);
      ScopedBudget budget(threads);
      auto solver = MakeSolver(name, threads);
      ASSERT_NE(solver, nullptr);
      auto parallel = solver->Solve(*goal_context);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      double parallel_threshold = 0.0;
      const auto parallel_ranked =
          AnswerGoal(*parallel, view, goal, &parallel_threshold);
      ExpectRankedEquivalent(serial_ranked, parallel_ranked,
                             name + "/" + goal.ToString() + "/t" +
                                 std::to_string(threads));
      EXPECT_NEAR(serial_threshold, parallel_threshold, kDriftTolerance);
    }
  }
}

// Every solver that advertises the capability — found by asking, not by a
// hardcoded list, so a new traversal solver is swept automatically.
std::vector<std::string> ParallelSolverNames() {
  std::vector<std::string> names;
  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    if (solver.ok() &&
        ((*solver)->capabilities() & kCapIntraQueryParallel) != 0) {
      names.push_back(name);
    }
  }
  return names;
}

TEST(ParallelDeterminism, RegistryAdvertisesTheExpectedSolvers) {
  const std::vector<std::string> names = ParallelSolverNames();
  for (const char* expected : {"kdtt", "kdtt+", "qdtt+", "mwtt", "bnb"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " lost kCapIntraQueryParallel";
  }
}

TEST(ParallelDeterminism, FullSolveSweepOnBaseContexts) {
  for (uint64_t seed : {1200u, 1201u}) {
    SCOPED_TRACE(seed);
    const int dim = 2 + static_cast<int>(seed % 2);
    const UncertainDataset dataset =
        RandomDataset(60, 4, dim, 0.4, seed, seed % 2 == 0);
    ExecutionContext context(dataset, RandomWr(dim, seed));
    for (const std::string& name : ParallelSolverNames()) {
      SweepFullSolve(name, context);
    }
  }
}

TEST(ParallelDeterminism, FullSolveSweepOnDerivedViews) {
  const UncertainDataset dataset = RandomDataset(50, 4, 3, 0.4, 1300);
  auto base = std::make_shared<ExecutionContext>(dataset, WrRegion(3, 2));
  std::vector<int> subset;
  for (int i = 0; i < 50; i += 2) subset.push_back(i);
  const std::vector<ViewSpec> specs = {
      ViewSpec::Prefix(30),
      ViewSpec::Subset(subset),
  };
  for (const ViewSpec& spec : specs) {
    SCOPED_TRACE(spec.CacheKey());
    auto view = DatasetView::Create(dataset, spec);
    ASSERT_TRUE(view.ok());
    auto derived = ExecutionContext::Derive(base, *view);
    for (const std::string& name : ParallelSolverNames()) {
      SweepFullSolve(name, *derived);
    }
  }
}

TEST(ParallelDeterminism, GoalPushdownSweep) {
  const UncertainDataset dataset = RandomDataset(48, 4, 3, 0.4, 1400);
  auto context = std::make_shared<ExecutionContext>(dataset, RandomWr(3, 1400));
  for (const std::string& name : ParallelSolverNames()) {
    SweepGoalSolves(name, context);
  }
}

TEST(ParallelDeterminism, GoalPushdownSweepOnDerivedViews) {
  const UncertainDataset dataset = RandomDataset(40, 3, 3, 0.4, 1500);
  auto base = std::make_shared<ExecutionContext>(dataset, WrRegion(3, 2));
  auto view = DatasetView::Create(dataset, ViewSpec::Prefix(25));
  ASSERT_TRUE(view.ok());
  auto derived = ExecutionContext::Derive(base, *view);
  for (const std::string& name : ParallelSolverNames()) {
    SweepGoalSolves(name, derived);
  }
}

// The TSan target: a batch of parallel queries racing over ONE pooled
// ExecutionContext, with the batch pool and the per-query arenas sharing a
// pinned core budget (some queries get helpers, late ones degrade to
// serial — either way the results must be bitwise the serial reference).
TEST(ParallelDeterminism, ConcurrentSolveBatchOnOnePooledContext) {
  ScopedBudget budget(8);
  const UncertainDataset dataset = RandomDataset(60, 4, 3, 0.4, 1600);

  EngineOptions options;
  options.num_threads = 4;
  options.query_threads = 0;
  ArspEngine engine(options);
  const DatasetHandle handle = engine.AddDataset(dataset);

  QueryRequest base_request;
  base_request.dataset = handle;
  base_request.constraints = ConstraintSpec::Region(WrRegion(3, 2));
  base_request.solver = "kdtt+";
  base_request.use_cache = false;  // every entry must really solve
  base_request.pool_context = true;

  QueryRequest serial_request = base_request;
  serial_request.parallelism = 1;
  auto reference = engine.Solve(serial_request);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  std::vector<QueryRequest> batch;
  for (int i = 0; i < 12; ++i) {
    QueryRequest request = base_request;
    request.parallelism = 2 + (i % 3);  // 2, 3, 4 workers requested
    batch.push_back(request);
  }
  // A derived request rides along: pushdown + parallelism concurrently on
  // the same pooled context.
  QueryRequest derived = base_request;
  derived.parallelism = 2;
  derived.derived.kind = DerivedKind::kTopKObjects;
  derived.derived.k = 5;
  batch.push_back(derived);

  const auto responses = engine.SolveBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(responses[i].ok()) << responses[i].status().ToString();
    const QueryResponse& response = *responses[i];
    if (batch[i].derived.kind == DerivedKind::kNone) {
      ASSERT_TRUE(response.result->is_complete());
      ExpectBitIdentical(*reference->result, *response.result,
                         "batch entry " + std::to_string(i));
    } else {
      const auto serial_ranked = TopKObjects(
          *reference->result, engine.view(handle), batch[i].derived.k);
      ExpectRankedEquivalent(serial_ranked, response.ranked, "derived entry");
    }
  }
  // Everything granted was returned: the budget leaks nothing across a
  // batch of arenas created and destroyed under contention.
  EXPECT_EQ(CoreBudget::InUse(), 4);  // just the batch pool's reservation
}

}  // namespace
}  // namespace arsp
