// Copyright 2026 The ARSP Authors.
//
// Property tests for the two F-dominance tests: Theorem 2 (vertex scores)
// and Theorem 5 (closed-form weight-ratio test), including their mutual
// equivalence on random data.

#include "src/prefs/fdominance.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/prefs/constraint_generators.h"

namespace arsp {
namespace {

Point RandomPoint(int dim, Rng& rng) {
  Point p(dim);
  for (int i = 0; i < dim; ++i) p[i] = rng.Uniform01();
  return p;
}

TEST(FDominanceTest, VertexTestBasics) {
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);
  // (1,1) F-dominates (2,2) but not vice versa.
  EXPECT_TRUE(FDominates(Point{1.0, 1.0}, Point{2.0, 2.0}, region));
  EXPECT_FALSE(FDominates(Point{2.0, 2.0}, Point{1.0, 1.0}, region));
  // Equal points weakly dominate each other (paper's definition).
  EXPECT_TRUE(FDominates(Point{1.0, 1.0}, Point{1.0, 1.0}, region));
}

TEST(FDominanceTest, FDominanceIsWeakerThanCoordinateDominance) {
  // Coordinate dominance implies F-dominance for any region (monotone
  // scoring), but F can also order coordinate-incomparable points.
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);
  EXPECT_TRUE(FDominates(Point{1.0, 3.0}, Point{2.0, 3.5}, region));
  // (1,3) vs (2,3.5): coordinate dominance holds too. Now an incomparable
  // pair: (0, 1.2) vs (1, 0.3): under (1/3,2/3) the former scores 0.8 vs
  // 0.533; under (2/3,1/3) it scores 0.4 vs 0.767 — no dominance either way.
  EXPECT_FALSE(FDominates(Point{0.0, 1.2}, Point{1.0, 0.3}, region));
  EXPECT_FALSE(FDominates(Point{1.0, 0.3}, Point{0.0, 1.2}, region));
  // But (1,2) F-dominates (2,1.8)? scores: (1/3+4/3)=5/3 vs (2/3+1.2)=1.867;
  // (2/3+2/3)=4/3 vs (4/3+0.6)=1.93 — yes, although coordinates are
  // incomparable.
  EXPECT_TRUE(FDominates(Point{1.0, 2.0}, Point{2.0, 1.8}, region));
  EXPECT_FALSE(DominatesWeak(Point{1.0, 2.0}, Point{2.0, 1.8}));
}

TEST(FDominanceTest, PaperExample3) {
  // Example 3: R = [0.5, 2]; t3,1=(6,5) and t3,2, t3,3 F-dominate
  // t2,3=(9,12).
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const Point t23{9.0, 12.0};
  EXPECT_TRUE(FDominatesWeightRatio(Point{6.0, 5.0}, t23, wr));
  // A point exactly on h_{t,0}: y = -0.5x + 16.5, e.g. (5, 14).
  EXPECT_TRUE(FDominatesWeightRatio(Point{5.0, 14.0}, t23, wr));
  // Slightly above the hyperplane: no longer dominating.
  EXPECT_FALSE(FDominatesWeightRatio(Point{5.0, 14.1}, t23, wr));
  // Region 1 (x >= 9): on h_{t,1}: y = -2x + 30, e.g. (10, 10).
  EXPECT_TRUE(FDominatesWeightRatio(Point{10.0, 10.0}, t23, wr));
  EXPECT_FALSE(FDominatesWeightRatio(Point{10.0, 10.2}, t23, wr));
}

TEST(FDominanceTest, Theorem5MatchesTheorem2OnRandomPairs) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int d = rng.UniformInt(2, 5);
    std::vector<std::pair<double, double>> ranges;
    for (int i = 0; i < d - 1; ++i) {
      const double lo = rng.Uniform(0.1, 1.5);
      ranges.emplace_back(lo, lo + rng.Uniform(0.0, 2.0));
    }
    const auto wr = WeightRatioConstraints::Create(ranges).value();
    const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);
    for (int pair = 0; pair < 20; ++pair) {
      const Point t = RandomPoint(d, rng);
      const Point s = RandomPoint(d, rng);
      EXPECT_EQ(FDominatesWeightRatio(t, s, wr),
                FDominatesVertex(t, s, region.vertices()))
          << "d=" << d << " t=" << t.ToString() << " s=" << s.ToString();
    }
  }
}

TEST(FDominanceTest, TransitivityUnderRandomRegions) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const int d = 3;
    const LinearConstraints lc = MakeInteractiveConstraints(d, 3, rng);
    const auto region = PreferenceRegion::FromLinearConstraints(lc);
    ASSERT_TRUE(region.ok());
    const Point a = RandomPoint(d, rng);
    const Point b = RandomPoint(d, rng);
    const Point c = RandomPoint(d, rng);
    if (FDominates(a, b, *region) && FDominates(b, c, *region)) {
      EXPECT_TRUE(FDominates(a, c, *region));
    }
  }
}

TEST(FDominanceTest, CoordinateDominanceImpliesFDominance) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const int d = rng.UniformInt(2, 5);
    const LinearConstraints lc =
        MakeWeakRankingConstraints(d, rng.UniformInt(0, d - 1));
    const auto region = PreferenceRegion::FromLinearConstraints(lc);
    ASSERT_TRUE(region.ok());
    Point t = RandomPoint(d, rng);
    Point s = t;
    for (int i = 0; i < d; ++i) s[i] += rng.Uniform(0.0, 0.5);
    EXPECT_TRUE(FDominates(t, s, *region));
  }
}

TEST(FDominanceTest, NarrowerRegionDominatesMore) {
  // Shrinking Ω (adding constraints) can only enlarge the dominance
  // relation: if t ≺F s for the wide region, it still holds for the narrow
  // one. This drives the Fig. 5(p–t) "vary c" trends.
  Rng rng(17);
  const auto wide = WeightRatioConstraints::Create({{0.2, 5.0}}).value();
  const auto narrow = WeightRatioConstraints::Create({{0.8, 1.25}}).value();
  int wide_count = 0;
  int narrow_count = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Point t = RandomPoint(2, rng);
    const Point s = RandomPoint(2, rng);
    const bool wide_dom = FDominatesWeightRatio(t, s, wide);
    const bool narrow_dom = FDominatesWeightRatio(t, s, narrow);
    if (wide_dom) {
      ++wide_count;
      EXPECT_TRUE(narrow_dom);
    }
    if (narrow_dom) ++narrow_count;
  }
  EXPECT_GT(narrow_count, wide_count);  // strictly more dominance overall
}

TEST(FDominanceTest, ScoreIsLinear) {
  const Point omega{0.25, 0.75};
  EXPECT_DOUBLE_EQ(Score(omega, Point{4.0, 8.0}), 7.0);
}

}  // namespace
}  // namespace arsp
