// Copyright 2026 The ARSP Authors.
//
// Goal pushdown mechanics: GoalPruner decision rules and activation gates,
// partial-result invariants (is_complete / decided / bounds enclosure, and
// the CHECK guards that keep partial results out of full-result helpers),
// the SolverStats pruning counters, and the headline acceptance property —
// on the Fig. 6 real-data config (NBA-like, d = 4, c = 3), a top-k (k ≤ 10)
// and a p = 0.5 threshold query perform strictly fewer bound refinements /
// exact instance evaluations than the full solve, for KDTT+ and MWTT (and
// the other pushdown solvers along the way).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/queries.h"
#include "src/core/solver.h"
#include "src/uncertain/generators.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::WrRegion;

// ------------------------------------------------------------- GoalPruner

UncertainDataset TwoObjectDataset() {
  // Object 0: two instances of mass 0.5 each. Object 1: four of 0.25.
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.1, 0.2}, Point{0.2, 0.1}}, {0.5, 0.5});
  builder.AddObject({Point{0.5, 0.6}, Point{0.6, 0.5}, Point{0.7, 0.8},
                     Point{0.8, 0.7}},
                    {0.25, 0.25, 0.25, 0.25});
  return std::move(builder.Build()).value();
}

TEST(GoalPrunerTest, InactiveWhenNothingCanBePruned) {
  const UncertainDataset dataset = TwoObjectDataset();
  const DatasetView view{dataset};
  EXPECT_FALSE(GoalPruner(QueryGoal::Full(), view).active());
  EXPECT_FALSE(GoalPruner(QueryGoal::TopK(-1), view).active());
  // k == 0 (an empty answer — also what arsp_cli --topk garbage parses to)
  // must deactivate, not feed τ sweeps an ill-defined "0-th largest".
  EXPECT_FALSE(GoalPruner(QueryGoal::TopK(0), view).active());
  EXPECT_FALSE(GoalPruner(QueryGoal::CountControlled(0), view).active());
  EXPECT_FALSE(GoalPruner(QueryGoal::TopK(2), view).active());  // k == m
  EXPECT_FALSE(GoalPruner(QueryGoal::TopK(99), view).active());
  EXPECT_FALSE(GoalPruner(QueryGoal::Threshold(0.0), view).active());
  EXPECT_FALSE(GoalPruner(QueryGoal::Threshold(-1.0), view).active());
  EXPECT_TRUE(GoalPruner(QueryGoal::TopK(1), view).active());
  EXPECT_TRUE(GoalPruner(QueryGoal::Threshold(0.5), view).active());
}

TEST(GoalPrunerTest, ThresholdDecidesByBounds) {
  const UncertainDataset dataset = TwoObjectDataset();
  const DatasetView view{dataset};
  GoalPruner pruner(QueryGoal::Threshold(0.6), view);
  ASSERT_TRUE(pruner.active());
  EXPECT_FALSE(pruner.GoalMet());

  // Object 1's upper bound starts at 1.0; after two zero resolutions it is
  // 0.5 < 0.6 - eps: excluded with two instances still unresolved.
  pruner.Resolve(2, 0.0);
  EXPECT_FALSE(pruner.ObjectDecided(1));
  pruner.Resolve(3, 0.0);
  EXPECT_TRUE(pruner.ObjectDecided(1));
  EXPECT_EQ(pruner.objects_pruned(), 1);

  // Object 0 resolves fully (exact); the goal is then met with object 1's
  // tail never evaluated.
  pruner.Resolve(0, 0.5);
  EXPECT_FALSE(pruner.GoalMet());
  pruner.Resolve(1, 0.45);
  EXPECT_TRUE(pruner.ObjectDecided(0));
  EXPECT_TRUE(pruner.GoalMet());
  EXPECT_FALSE(pruner.all_resolved());
  EXPECT_EQ(pruner.bound_refinements(), 4);

  const int skipped[] = {4, 5};
  EXPECT_TRUE(pruner.AllDecided(skipped, 2));

  ArspResult result;
  result.instance_probs = {0.5, 0.45, 0.0, 0.0, 0.0, 0.0};
  pruner.Finish(&result);
  EXPECT_FALSE(result.is_complete());
  EXPECT_EQ(result.goal, QueryGoal::Threshold(0.6));
  ASSERT_EQ(result.object_bounds.size(), 2u);
  EXPECT_EQ(result.object_decisions[0], ObjectDecision::kExact);
  EXPECT_EQ(result.object_decisions[1], ObjectDecision::kExcluded);
  EXPECT_DOUBLE_EQ(result.object_bounds[0].lower, 0.95);
  EXPECT_DOUBLE_EQ(result.object_bounds[0].upper, 0.95);
  EXPECT_DOUBLE_EQ(result.object_bounds[1].lower, 0.0);
  EXPECT_DOUBLE_EQ(result.object_bounds[1].upper, 0.5);
  EXPECT_TRUE(result.decided(0));
  EXPECT_TRUE(result.decided(1));
}

TEST(GoalPrunerTest, ThresholdAboveTotalMassExcludesBeforeTraversal) {
  // Every object's existence mass is below the threshold: all excluded at
  // construction, the goal is met before a single instance is evaluated.
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.1, 0.2}}, {0.4});
  builder.AddObject({Point{0.3, 0.4}, Point{0.4, 0.3}}, {0.2, 0.2});
  const UncertainDataset dataset = std::move(builder.Build()).value();
  const DatasetView view{dataset};
  GoalPruner pruner(QueryGoal::Threshold(0.5), view);
  ASSERT_TRUE(pruner.active());
  EXPECT_TRUE(pruner.GoalMet());
  EXPECT_EQ(pruner.objects_pruned(), 2);
  EXPECT_EQ(pruner.bound_refinements(), 0);
}

TEST(GoalPrunerTest, TopKNeverExcludesWithinEpsOfTheCut) {
  // Two objects exactly tied at the top: neither may be excluded by the
  // other's lower bound — ties must resolve to exactness.
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.1, 0.9}}, {0.8});
  builder.AddObject({Point{0.9, 0.1}}, {0.8});
  builder.AddObject({Point{0.5, 0.5}, Point{0.6, 0.6}}, {0.1, 0.1});
  const UncertainDataset dataset = std::move(builder.Build()).value();
  const DatasetView view{dataset};
  GoalPruner pruner(QueryGoal::TopK(1), view);
  ASSERT_TRUE(pruner.active());
  pruner.Resolve(0, 0.8);
  pruner.Resolve(1, 0.8);
  // The newly exact winners trigger a τ sweep on the next GoalMet: object 2
  // (upper 0.2 < τ = 0.8) is excluded, the tied object 1 must survive the
  // sweep (it is exact, never excluded), and the goal is met.
  EXPECT_TRUE(pruner.GoalMet());
  EXPECT_TRUE(pruner.ObjectDecided(0));
  EXPECT_TRUE(pruner.ObjectDecided(1));
  EXPECT_TRUE(pruner.ObjectDecided(2));
  EXPECT_EQ(pruner.objects_pruned(), 1);  // only object 2
}

// -------------------------------------------------- partial-result guards

TEST(PartialResultGuards, FullResultHelpersRejectPartialResults) {
  ArspResult partial;
  partial.instance_probs = {0.5, 0.0};
  partial.complete = false;
  EXPECT_DEATH(CountNonZero(partial), "complete");
  EXPECT_DEATH(InstancesAboveThreshold(partial, 0.5), "complete");
  const UncertainDataset dataset = TwoObjectDataset();
  ArspResult sized;
  sized.instance_probs.assign(6, 0.0);
  sized.complete = false;
  EXPECT_DEATH(ObjectProbabilities(sized, dataset), "complete");
  EXPECT_DEATH(TopKObjects(sized, dataset, 1), "complete");
}

TEST(PartialResultGuards, AnswerGoalRejectsMismatchedGoal) {
  const UncertainDataset dataset = TwoObjectDataset();
  ExecutionContext context(dataset, WrRegion(2, 1),
                           QueryGoal::Threshold(0.6));
  auto solver = SolverRegistry::Create("kdtt+");
  ASSERT_TRUE(solver.ok());
  auto result = (*solver)->Solve(context);
  ASSERT_TRUE(result.ok());
  if (!result->is_complete()) {
    EXPECT_DEATH(
        AnswerGoal(*result, context.view(), QueryGoal::Threshold(0.9)),
        "answers goal");
  }
}

// -------------------------------------------------- bounds are enclosures

TEST(GoalPushdown, PartialBoundsEncloseTheTrueProbabilities) {
  const UncertainDataset dataset = RandomDataset(30, 4, 3, 0.3, 42);
  const PreferenceRegion region = WrRegion(3, 2);
  ExecutionContext full(dataset, region);
  auto solver = SolverRegistry::Create("kdtt+");
  ASSERT_TRUE(solver.ok());
  auto reference = (*solver)->Solve(full);
  ASSERT_TRUE(reference.ok());
  const std::vector<double> truth = ObjectProbabilities(*reference, dataset);

  for (const QueryGoal& goal :
       {QueryGoal::TopK(3), QueryGoal::Threshold(0.4)}) {
    ExecutionContext context(dataset, region, goal);
    auto result = (*solver)->Solve(context);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->object_bounds.size(), truth.size());
    for (size_t j = 0; j < truth.size(); ++j) {
      const ProbabilityBounds& b = result->object_bounds[j];
      EXPECT_LE(b.lower, truth[j] + 1e-9) << j;
      EXPECT_GE(b.upper, truth[j] - 1e-9) << j;
      if (result->object_decisions[j] == ObjectDecision::kExact) {
        EXPECT_EQ(b.lower, b.upper) << j;
        EXPECT_NEAR(b.lower, truth[j], 1e-12) << j;
      }
    }
  }
}

// ----------------------------------------------- the acceptance criterion

// The Fig. 6 real-data configuration the benches run: NBA-like data at
// d = 4 with the c = 3 weak-ranking region (bench_fig6_real.cc).
struct PushdownSavings {
  SolverStats full;
  SolverStats goal;
  ArspResult goal_result;
  std::vector<std::pair<int, double>> oracle;
  std::vector<std::pair<int, double>> pushed;
};

PushdownSavings RunFig6Case(const std::string& name, const QueryGoal& goal) {
  const UncertainDataset dataset = GenerateNbaLike(250, 4, 1003, nullptr);
  const PreferenceRegion region = WrRegion(4, 3);
  PushdownSavings out;
  auto solver = SolverRegistry::Create(name).value();
  ExecutionContext full(dataset, region);
  const ArspResult reference = solver->Solve(full, &out.full).value();
  ExecutionContext context(dataset, region, goal);
  out.goal_result = solver->Solve(context, &out.goal).value();
  out.oracle = AnswerGoal(reference, full.view(), goal);
  out.pushed = AnswerGoal(out.goal_result, context.view(), goal);
  return out;
}

TEST(GoalPushdown, Fig6RealConfigStrictSavings) {
  const UncertainDataset probe = GenerateNbaLike(250, 4, 1003, nullptr);
  const int64_t n = probe.num_instances();
  for (const std::string& name : {std::string("kdtt+"), std::string("mwtt")}) {
    for (const QueryGoal& goal :
         {QueryGoal::TopK(10), QueryGoal::Threshold(0.5)}) {
      SCOPED_TRACE(name + "/" + goal.ToString());
      const PushdownSavings s = RunFig6Case(name, goal);
      // The full solve evaluates every instance exactly; pushdown must do
      // strictly less — fewer bound refinements than instances (some were
      // never evaluated), objects decided out, and fewer visited nodes.
      EXPECT_EQ(s.full.bound_refinements, 0);  // no pruner on full solves
      EXPECT_LT(s.goal.bound_refinements, n);
      EXPECT_GT(s.goal.bound_refinements, 0);
      EXPECT_GT(s.goal.objects_pruned, 0);
      EXPECT_LT(s.goal.nodes_visited, s.full.nodes_visited);
      EXPECT_FALSE(s.goal_result.is_complete());
      // And the answer is still the post-hoc answer.
      ASSERT_EQ(s.oracle.size(), s.pushed.size());
      for (size_t i = 0; i < s.oracle.size(); ++i) {
        EXPECT_EQ(s.oracle[i].first, s.pushed[i].first) << i;
        EXPECT_NEAR(s.oracle[i].second, s.pushed[i].second, 1e-12) << i;
      }
    }
  }
}

TEST(GoalPushdown, StatsStringCarriesPruningCounters) {
  const UncertainDataset dataset = GenerateNbaLike(60, 4, 1003, nullptr);
  ExecutionContext context(dataset, WrRegion(4, 3),
                           QueryGoal::Threshold(0.5));
  auto solver = SolverRegistry::Create("kdtt+");
  ASSERT_TRUE(solver.ok());
  SolverStats stats;
  ASSERT_TRUE((*solver)->Solve(context, &stats).ok());
  const std::string line = stats.ToString();
  EXPECT_NE(line.find("objects_pruned="), std::string::npos);
  EXPECT_NE(line.find("bound_refinements="), std::string::npos);
  EXPECT_NE(line.find("early_exit="), std::string::npos);
  EXPECT_GT(stats.objects_pruned, 0);
}

}  // namespace
}  // namespace arsp
