// Copyright 2026 The ARSP Authors.
//
// Shared helpers for the algorithm test suites: small random uncertain
// datasets, preference regions of both constraint families, and an
// Example-1-style hand dataset whose coordinates are consistent with the
// dominance relations the paper states in Examples 1 and 3.

#ifndef ARSP_TESTS_TEST_UTIL_H_
#define ARSP_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/prefs/constraint_generators.h"
#include "src/prefs/fdominance.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/generators.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {
namespace testing_util {

/// A small random uncertain dataset with duplicate-prone coordinates when
/// `grid` is set (coordinates snapped to a coarse grid, so exact ties and
/// duplicate points actually occur).
inline UncertainDataset RandomDataset(int num_objects, int max_instances,
                                      int dim, double phi, uint64_t seed,
                                      bool grid = false) {
  Rng rng(seed);
  UncertainDatasetBuilder builder(dim);
  const int truncated = static_cast<int>(phi * num_objects + 0.5);
  for (int j = 0; j < num_objects; ++j) {
    const int count = rng.UniformInt(1, max_instances);
    std::vector<Point> points;
    std::vector<double> probs;
    const bool drop_mass = j < truncated;
    for (int i = 0; i < count; ++i) {
      Point p(dim);
      for (int k = 0; k < dim; ++k) {
        double v = rng.Uniform01();
        if (grid) v = std::round(v * 4.0) / 4.0;  // 5 distinct values
        p[k] = v;
      }
      points.push_back(std::move(p));
      probs.push_back((drop_mass ? 0.9 : 1.0) / count);
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  auto out = builder.Build();
  return std::move(out).value();
}

/// WR preference region for dimension d with c constraints.
inline PreferenceRegion WrRegion(int dim, int c) {
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(dim, c));
  return std::move(region).value();
}

/// IM preference region for dimension d with c constraints.
inline PreferenceRegion ImRegion(int dim, int c, uint64_t seed) {
  Rng rng(seed);
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeInteractiveConstraints(dim, c, rng));
  return std::move(region).value();
}

/// Random weight-ratio constraints for dimension d.
inline WeightRatioConstraints RandomWr(int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> ranges;
  for (int i = 0; i < dim - 1; ++i) {
    const double lo = rng.Uniform(0.2, 1.2);
    ranges.emplace_back(lo, lo + rng.Uniform(0.0, 2.0));
  }
  return WeightRatioConstraints::Create(std::move(ranges)).value();
}

/// A 4-object / 10-instance dataset shaped like the paper's Fig. 1, with
/// coordinates consistent with Example 3 (t2,3 = (9,12), t3,1 = (6,5), and
/// t3,1, t3,2, t3,3 all F-dominate t2,3 under R = [0.5, 2]).
inline UncertainDataset Example1Dataset() {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{2.0, 10.0}, Point{14.0, 14.0}}, {0.5, 0.5});
  builder.AddObject({Point{3.0, 3.0}, Point{8.0, 11.0}, Point{9.0, 12.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{6.0, 5.0}, Point{7.0, 6.0}, Point{10.0, 9.0}},
                    {1.0 / 3, 1.0 / 3, 1.0 / 3});
  builder.AddObject({Point{12.0, 1.0}, Point{13.0, 4.0}}, {0.5, 0.5});
  auto out = builder.Build();
  return std::move(out).value();
}

/// The Example-1 preference region: F = {ω1 x1 + ω2 x2 | 0.5 ω2 ≤ ω1 ≤ 2 ω2}.
inline WeightRatioConstraints Example1Wr() {
  return WeightRatioConstraints::Create({{0.5, 2.0}}).value();
}

}  // namespace testing_util
}  // namespace arsp

#endif  // ARSP_TESTS_TEST_UTIL_H_
