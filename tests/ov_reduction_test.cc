// Copyright 2026 The ARSP Authors.
//
// Executable check of the Theorem-1 reduction: ARSP solves Orthogonal
// Vectors through the constructed dataset, for both outcomes.

#include <gtest/gtest.h>

#include "src/core/kdtt_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "src/core/ov_reduction.h"
#include "src/prefs/preference_region.h"

namespace arsp {
namespace {

TEST(OvReductionTest, DatasetShapeFollowsTheorem1) {
  OvInstance ov;
  ov.a = {{0, 1}, {1, 1}};
  ov.b = {{1, 0}, {0, 1}, {1, 1}};
  const UncertainDataset dataset = BuildOvDataset(ov);
  EXPECT_EQ(dataset.dim(), 2);
  EXPECT_EQ(dataset.num_objects(), 4);  // 3 singletons + T_A
  EXPECT_EQ(dataset.num_instances(), 5);
  // Singletons carry probability 1; T_A instances carry 1/|A| and map
  // 0 -> 3/2, 1 -> 1/2.
  EXPECT_DOUBLE_EQ(dataset.instance(0).prob, 1.0);
  EXPECT_EQ(dataset.instance(3).point, (Point{1.5, 0.5}));  // ξ((0,1))
  EXPECT_EQ(dataset.instance(4).point, (Point{0.5, 0.5}));  // ξ((1,1))
  EXPECT_DOUBLE_EQ(dataset.instance(3).prob, 0.5);
}

TEST(OvReductionTest, PositiveInstanceDetected) {
  // a = (1,0,1), b = (0,1,0): orthogonal.
  OvInstance ov;
  ov.a = {{1, 0, 1}};
  ov.b = {{0, 1, 0}};
  ASSERT_TRUE(OvPairExistsBrute(ov));
  const UncertainDataset dataset = BuildOvDataset(ov);
  const ArspResult result = ComputeArspKdtt(
      dataset, PreferenceRegion::FullSimplex(3));
  EXPECT_TRUE(OvPairExists(result, dataset));
}

TEST(OvReductionTest, NegativeInstanceDetected) {
  // Every pair shares a 1.
  OvInstance ov;
  ov.a = {{1, 0}, {1, 1}};
  ov.b = {{1, 0}, {1, 1}};
  ASSERT_FALSE(OvPairExistsBrute(ov));
  const UncertainDataset dataset = BuildOvDataset(ov);
  const ArspResult result = ComputeArspKdtt(
      dataset, PreferenceRegion::FullSimplex(2));
  EXPECT_FALSE(OvPairExists(result, dataset));
}

TEST(OvReductionTest, RandomInstancesMatchBruteForce) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const int n = 4 + static_cast<int>(seed % 5);
    const int d = 3 + static_cast<int>(seed % 4);
    // Mix densities so both outcomes occur across the sweep.
    const double density = (seed % 3 == 0) ? 0.8 : 0.4;
    const OvInstance ov = MakeRandomOvInstance(n, d, density, seed);
    const UncertainDataset dataset = BuildOvDataset(ov);
    const ArspResult result = ComputeArspKdtt(
        dataset, PreferenceRegion::FullSimplex(d));
    EXPECT_EQ(OvPairExists(result, dataset), OvPairExistsBrute(ov))
        << "seed=" << seed;
    // Consistency with LOOP on the same reduction dataset.
    const ArspResult loop = ComputeArspLoop(
        dataset, PreferenceRegion::FullSimplex(d));
    EXPECT_LT(MaxAbsDiff(result, loop), 1e-10);
  }
}

}  // namespace
}  // namespace arsp
