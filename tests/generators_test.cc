// Copyright 2026 The ARSP Authors.

#include "src/uncertain/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(GeneratorsTest, SyntheticRespectsConfig) {
  SyntheticConfig config;
  config.num_objects = 100;
  config.max_instances = 10;
  config.dim = 3;
  config.phi = 0.0;
  const UncertainDataset dataset = GenerateSynthetic(config);
  EXPECT_EQ(dataset.num_objects(), 100);
  EXPECT_EQ(dataset.dim(), 3);
  EXPECT_GE(dataset.num_instances(), 100);
  EXPECT_LE(dataset.num_instances(), 1000);
  for (int j = 0; j < dataset.num_objects(); ++j) {
    EXPECT_NEAR(dataset.object_prob(j), 1.0, 1e-9) << "phi=0: full mass";
    EXPECT_LE(dataset.object_size(j), 10);
  }
  // All coordinates inside the unit cube.
  for (int i = 0; i < dataset.num_instances(); ++i) {
    const double* row = dataset.coords(i);
    for (int k = 0; k < 3; ++k) {
      EXPECT_GE(row[k], 0.0);
      EXPECT_LE(row[k], 1.0);
    }
  }
}

TEST(GeneratorsTest, SyntheticPhiTruncatesPrefix) {
  SyntheticConfig config;
  config.num_objects = 50;
  config.max_instances = 8;
  config.phi = 0.4;
  const UncertainDataset dataset = GenerateSynthetic(config);
  for (int j = 0; j < 20; ++j) {
    EXPECT_LT(dataset.object_prob(j), 1.0 - 1e-9) << "object " << j;
  }
  for (int j = 20; j < 50; ++j) {
    EXPECT_NEAR(dataset.object_prob(j), 1.0, 1e-9) << "object " << j;
  }
}

TEST(GeneratorsTest, SyntheticDeterministicUnderSeed) {
  SyntheticConfig config;
  config.num_objects = 30;
  config.seed = 77;
  const UncertainDataset a = GenerateSynthetic(config);
  const UncertainDataset b = GenerateSynthetic(config);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (int i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.instance(i).point, b.instance(i).point);
  }
}

TEST(GeneratorsTest, DistributionsDifferInCorrelation) {
  // Empirical correlation of the first two center coordinates: positive for
  // CORR, negative for ANTI (sampled via per-object means).
  auto correlation = [](Distribution dist) {
    SyntheticConfig config;
    config.num_objects = 2000;
    config.max_instances = 1;
    config.dim = 2;
    config.distribution = dist;
    config.seed = 5;
    const UncertainDataset dataset = GenerateSynthetic(config);
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const int n = dataset.num_instances();
    for (int i = 0; i < n; ++i) {
      const double* row = dataset.coords(i);
      sx += row[0];
      sy += row[1];
      sxx += row[0] * row[0];
      syy += row[1] * row[1];
      sxy += row[0] * row[1];
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  EXPECT_GT(correlation(Distribution::kCorrelated), 0.6);
  EXPECT_LT(correlation(Distribution::kAntiCorrelated), -0.2);
  EXPECT_NEAR(correlation(Distribution::kIndependent), 0.0, 0.15);
}

TEST(GeneratorsTest, IipLikeShape) {
  const UncertainDataset iip = GenerateIipLike(500, 3);
  EXPECT_EQ(iip.dim(), 2);
  EXPECT_EQ(iip.num_objects(), 500);
  EXPECT_EQ(iip.num_instances(), 500);
  for (int j = 0; j < iip.num_objects(); ++j) {
    EXPECT_EQ(iip.object_size(j), 1);
    const double p = iip.object_prob(j);
    EXPECT_TRUE(p == 0.8 || p == 0.7 || p == 0.6) << p;
  }
}

TEST(GeneratorsTest, CarLikeShape) {
  const UncertainDataset car = GenerateCarLike(200, 4);
  EXPECT_EQ(car.dim(), 4);
  EXPECT_EQ(car.num_objects(), 200);
  for (int j = 0; j < car.num_objects(); ++j) {
    EXPECT_GE(car.object_size(j), 1);
    EXPECT_LE(car.object_size(j), 30);
    EXPECT_NEAR(car.object_prob(j), 1.0, 1e-9);
  }
}

TEST(GeneratorsTest, NbaLikeShape) {
  std::vector<std::string> names;
  const UncertainDataset nba = GenerateNbaLike(50, 3, 11, &names);
  EXPECT_EQ(nba.dim(), 3);
  EXPECT_EQ(nba.num_objects(), 50);
  ASSERT_EQ(names.size(), 50u);
  EXPECT_EQ(names.front(), "Player-001");
  for (int j = 0; j < nba.num_objects(); ++j) {
    EXPECT_NEAR(nba.object_prob(j), 1.0, 1e-9);
    // Uniform per-record probability 1/|T|.
    const auto [begin, end] = nba.object_range(j);
    for (int i = begin; i < end; ++i) {
      EXPECT_NEAR(nba.instance(i).prob, 1.0 / (end - begin), 1e-12);
    }
  }
  EXPECT_EQ(NbaMetricNames(3),
            (std::vector<std::string>{"rebounds", "assists", "points"}));
}

TEST(GeneratorsTest, AggregateByMeanIsWeightedMean) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.0, 0.0}, Point{2.0, 4.0}}, {0.25, 0.75});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const std::vector<Point> agg = AggregateByMean(*dataset);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_NEAR(agg[0][0], 1.5, 1e-12);
  EXPECT_NEAR(agg[0][1], 3.0, 1e-12);
}

TEST(GeneratorsTest, TakeObjectsPrefix) {
  const UncertainDataset iip = GenerateIipLike(100, 1);
  const UncertainDataset sub = TakeObjects(iip, 40);
  EXPECT_EQ(sub.num_objects(), 40);
  for (int i = 0; i < sub.num_instances(); ++i) {
    EXPECT_EQ(sub.instance(i).point, iip.instance(i).point);
  }
}

TEST(GenerateFromSpecTest, SpecsMatchDirectGeneratorCalls) {
  // The textual form must produce bit-identical data to the direct call —
  // it is how arspd LOAD_DATASET names synthetic datasets, and remote
  // results are compared against locally generated references.
  const auto iip = GenerateFromSpec("iip:n=50,seed=9");
  ASSERT_TRUE(iip.ok()) << iip.status().ToString();
  const UncertainDataset direct = GenerateIipLike(50, 9);
  ASSERT_EQ(iip->num_instances(), direct.num_instances());
  for (int i = 0; i < direct.num_instances(); ++i) {
    EXPECT_EQ(iip->instance(i).point, direct.instance(i).point);
    EXPECT_EQ(iip->instance(i).prob, direct.instance(i).prob);
  }

  std::vector<std::string> names;
  const auto nba = GenerateFromSpec("nba:m=10,d=3,seed=2", &names);
  ASSERT_TRUE(nba.ok());
  EXPECT_EQ(nba->num_objects(), 10);
  EXPECT_EQ(nba->dim(), 3);
  EXPECT_EQ(names.size(), 10u);  // NBA provides real names

  const auto synthetic =
      GenerateFromSpec("synthetic:m=20,cnt=3,d=2,dist=ANTI,seed=5");
  ASSERT_TRUE(synthetic.ok());
  SyntheticConfig config;
  config.num_objects = 20;
  config.max_instances = 3;
  config.dim = 2;
  config.distribution = Distribution::kAntiCorrelated;
  config.seed = 5;
  const UncertainDataset expected = GenerateSynthetic(config);
  EXPECT_EQ(synthetic->num_instances(), expected.num_instances());
}

TEST(GenerateFromSpecTest, DefaultsApplyAndPlaceholderNamesFill) {
  std::vector<std::string> names;
  const auto car = GenerateFromSpec("car:m=5", &names);
  ASSERT_TRUE(car.ok()) << car.status().ToString();
  EXPECT_EQ(car->num_objects(), 5);
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "obj-0");
}

TEST(GenerateFromSpecTest, MalformedSpecsAreInvalidArgument) {
  EXPECT_FALSE(GenerateFromSpec("unknown:n=5").ok());       // bad family
  EXPECT_FALSE(GenerateFromSpec("iip:n=zap").ok());         // bad number
  EXPECT_FALSE(GenerateFromSpec("iip:n=0").ok());           // out of range
  EXPECT_FALSE(GenerateFromSpec("iip:bogus=3").ok());       // unknown key
  EXPECT_FALSE(GenerateFromSpec("iip:n").ok());             // not key=value
  EXPECT_FALSE(GenerateFromSpec("nba:d=9").ok());           // d out of range
  EXPECT_FALSE(GenerateFromSpec("synthetic:dist=DIAG").ok());
  EXPECT_FALSE(GenerateFromSpec("synthetic:phi=1.5").ok());
}

}  // namespace
}  // namespace arsp
