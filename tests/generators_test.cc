// Copyright 2026 The ARSP Authors.

#include "src/uncertain/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(GeneratorsTest, SyntheticRespectsConfig) {
  SyntheticConfig config;
  config.num_objects = 100;
  config.max_instances = 10;
  config.dim = 3;
  config.phi = 0.0;
  const UncertainDataset dataset = GenerateSynthetic(config);
  EXPECT_EQ(dataset.num_objects(), 100);
  EXPECT_EQ(dataset.dim(), 3);
  EXPECT_GE(dataset.num_instances(), 100);
  EXPECT_LE(dataset.num_instances(), 1000);
  for (int j = 0; j < dataset.num_objects(); ++j) {
    EXPECT_NEAR(dataset.object_prob(j), 1.0, 1e-9) << "phi=0: full mass";
    EXPECT_LE(dataset.object_size(j), 10);
  }
  // All coordinates inside the unit cube.
  for (const Instance& inst : dataset.instances()) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_GE(inst.point[k], 0.0);
      EXPECT_LE(inst.point[k], 1.0);
    }
  }
}

TEST(GeneratorsTest, SyntheticPhiTruncatesPrefix) {
  SyntheticConfig config;
  config.num_objects = 50;
  config.max_instances = 8;
  config.phi = 0.4;
  const UncertainDataset dataset = GenerateSynthetic(config);
  for (int j = 0; j < 20; ++j) {
    EXPECT_LT(dataset.object_prob(j), 1.0 - 1e-9) << "object " << j;
  }
  for (int j = 20; j < 50; ++j) {
    EXPECT_NEAR(dataset.object_prob(j), 1.0, 1e-9) << "object " << j;
  }
}

TEST(GeneratorsTest, SyntheticDeterministicUnderSeed) {
  SyntheticConfig config;
  config.num_objects = 30;
  config.seed = 77;
  const UncertainDataset a = GenerateSynthetic(config);
  const UncertainDataset b = GenerateSynthetic(config);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (int i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.instance(i).point, b.instance(i).point);
  }
}

TEST(GeneratorsTest, DistributionsDifferInCorrelation) {
  // Empirical correlation of the first two center coordinates: positive for
  // CORR, negative for ANTI (sampled via per-object means).
  auto correlation = [](Distribution dist) {
    SyntheticConfig config;
    config.num_objects = 2000;
    config.max_instances = 1;
    config.dim = 2;
    config.distribution = dist;
    config.seed = 5;
    const UncertainDataset dataset = GenerateSynthetic(config);
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const int n = dataset.num_instances();
    for (const Instance& inst : dataset.instances()) {
      sx += inst.point[0];
      sy += inst.point[1];
      sxx += inst.point[0] * inst.point[0];
      syy += inst.point[1] * inst.point[1];
      sxy += inst.point[0] * inst.point[1];
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  EXPECT_GT(correlation(Distribution::kCorrelated), 0.6);
  EXPECT_LT(correlation(Distribution::kAntiCorrelated), -0.2);
  EXPECT_NEAR(correlation(Distribution::kIndependent), 0.0, 0.15);
}

TEST(GeneratorsTest, IipLikeShape) {
  const UncertainDataset iip = GenerateIipLike(500, 3);
  EXPECT_EQ(iip.dim(), 2);
  EXPECT_EQ(iip.num_objects(), 500);
  EXPECT_EQ(iip.num_instances(), 500);
  for (int j = 0; j < iip.num_objects(); ++j) {
    EXPECT_EQ(iip.object_size(j), 1);
    const double p = iip.object_prob(j);
    EXPECT_TRUE(p == 0.8 || p == 0.7 || p == 0.6) << p;
  }
}

TEST(GeneratorsTest, CarLikeShape) {
  const UncertainDataset car = GenerateCarLike(200, 4);
  EXPECT_EQ(car.dim(), 4);
  EXPECT_EQ(car.num_objects(), 200);
  for (int j = 0; j < car.num_objects(); ++j) {
    EXPECT_GE(car.object_size(j), 1);
    EXPECT_LE(car.object_size(j), 30);
    EXPECT_NEAR(car.object_prob(j), 1.0, 1e-9);
  }
}

TEST(GeneratorsTest, NbaLikeShape) {
  std::vector<std::string> names;
  const UncertainDataset nba = GenerateNbaLike(50, 3, 11, &names);
  EXPECT_EQ(nba.dim(), 3);
  EXPECT_EQ(nba.num_objects(), 50);
  ASSERT_EQ(names.size(), 50u);
  EXPECT_EQ(names.front(), "Player-001");
  for (int j = 0; j < nba.num_objects(); ++j) {
    EXPECT_NEAR(nba.object_prob(j), 1.0, 1e-9);
    // Uniform per-record probability 1/|T|.
    const auto [begin, end] = nba.object_range(j);
    for (int i = begin; i < end; ++i) {
      EXPECT_NEAR(nba.instance(i).prob, 1.0 / (end - begin), 1e-12);
    }
  }
  EXPECT_EQ(NbaMetricNames(3),
            (std::vector<std::string>{"rebounds", "assists", "points"}));
}

TEST(GeneratorsTest, AggregateByMeanIsWeightedMean) {
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.0, 0.0}, Point{2.0, 4.0}}, {0.25, 0.75});
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const std::vector<Point> agg = AggregateByMean(*dataset);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_NEAR(agg[0][0], 1.5, 1e-12);
  EXPECT_NEAR(agg[0][1], 3.0, 1e-12);
}

TEST(GeneratorsTest, TakeObjectsPrefix) {
  const UncertainDataset iip = GenerateIipLike(100, 1);
  const UncertainDataset sub = TakeObjects(iip, 40);
  EXPECT_EQ(sub.num_objects(), 40);
  for (int i = 0; i < sub.num_instances(); ++i) {
    EXPECT_EQ(sub.instance(i).point, iip.instance(i).point);
  }
}

}  // namespace
}  // namespace arsp
