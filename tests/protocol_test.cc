// Copyright 2026 The ARSP Authors.
//
// Wire-protocol unit tests, no sockets needed for the codec half: every
// message round-trips encode → decode bit-exactly, truncated and hostile
// payloads are rejected without overreads or allocations, and the fd-level
// framing (over a socketpair) enforces magic, version, and the max-frame
// guard.

#include "src/net/protocol.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>

namespace arsp {
namespace net {
namespace {

TEST(WireCodecTest, PrimitivesRoundTripLittleEndian) {
  WireWriter w;
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1234567890123456789ll);
  w.Bool(true);
  w.F64(3.141592653589793);
  w.F64(-0.0);
  w.Str("hello");
  w.Str("");  // empty strings are legal

  // Spot-check the layout is little-endian: the U16 bytes follow the U8.
  const std::string& bytes = w.bytes();
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x34);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x12);

  WireReader r(bytes);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1234567890123456789ll);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.F64(), 3.141592653589793);
  EXPECT_TRUE(std::signbit(r.F64()));
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.Finish().ok()) << r.Finish().ToString();
}

TEST(WireCodecTest, ReaderRejectsTruncationWithStickyError) {
  WireWriter w;
  w.U32(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: zero value, sticky error
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.Str(), "");  // still failed, still safe
  EXPECT_FALSE(r.Finish().ok());
}

TEST(WireCodecTest, FinishRejectsTrailingGarbage) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U8(), 1);
  EXPECT_FALSE(r.Finish().ok());  // one byte unconsumed
}

TEST(WireCodecTest, HostileVectorCountsAreRejectedBeforeAllocation) {
  // A 4-byte payload claiming 2^31 doubles must fail the remaining-bytes
  // check instead of attempting a 16 GiB allocation.
  WireWriter w;
  w.U32(0x80000000u);
  {
    WireReader r(w.bytes());
    r.F64Vec();
    EXPECT_FALSE(r.status().ok());
  }
  {
    WireReader r(w.bytes());
    r.I32Vec();
    EXPECT_FALSE(r.status().ok());
  }
  {
    WireReader r(w.bytes());
    r.StrVec();
    EXPECT_FALSE(r.status().ok());
  }
  // A string length past the end of the payload likewise.
  WireWriter s;
  s.U32(1000);
  WireReader r(s.bytes());
  r.Str();
  EXPECT_FALSE(r.status().ok());
}

TEST(ProtocolMessagesTest, LoadDatasetRoundTrip) {
  LoadDatasetRequest request;
  request.name = "nba";
  request.source = LoadSource::kGenerator;
  request.payload = "nba:m=50,d=4,seed=1";
  request.header = true;
  LoadDatasetRequest decoded;
  ASSERT_TRUE(decoded.DecodePayload(request.EncodePayload()).ok());
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.source, request.source);
  EXPECT_EQ(decoded.payload, request.payload);
  EXPECT_EQ(decoded.header, request.header);

  LoadDatasetResponse response;
  response.name = "nba";
  response.num_objects = 50;
  response.num_instances = 4000;
  response.dim = 4;
  response.reused = true;
  LoadDatasetResponse decoded_response;
  ASSERT_TRUE(
      decoded_response.DecodePayload(response.EncodePayload()).ok());
  EXPECT_EQ(decoded_response.num_instances, 4000);
  EXPECT_TRUE(decoded_response.reused);
}

TEST(ProtocolMessagesTest, AddViewRoundTripAllSpecKinds) {
  for (const ViewSpec& spec :
       {ViewSpec::Full(), ViewSpec::Prefix(17), ViewSpec::Subset({5, 1, 9})}) {
    AddViewRequest request;
    request.base_name = "base";
    request.view_name = "view";
    request.spec = spec;
    AddViewRequest decoded;
    ASSERT_TRUE(decoded.DecodePayload(request.EncodePayload()).ok());
    EXPECT_EQ(decoded.spec.kind, spec.kind);
    EXPECT_EQ(decoded.spec.prefix, spec.prefix);
    EXPECT_EQ(decoded.spec.objects, spec.objects);
  }
}

TEST(ProtocolMessagesTest, QueryRequestRoundTrip) {
  QueryRequestWire request;
  request.dataset = "nba";
  request.constraint_spec = "wr:0.5,2.0";
  request.solver = "kdtt+";
  request.options = {"leaf_size=16", "verbose=true"};
  request.derived_kind = WireDerivedKind::kObjectsAboveThreshold;
  request.k = 3;
  request.threshold = 0.25;
  request.max_objects = 7;
  request.use_cache = false;
  request.allow_pushdown = false;
  request.include_instances = true;
  QueryRequestWire decoded;
  ASSERT_TRUE(decoded.DecodePayload(request.EncodePayload()).ok());
  EXPECT_EQ(decoded.dataset, request.dataset);
  EXPECT_EQ(decoded.constraint_spec, request.constraint_spec);
  EXPECT_EQ(decoded.solver, request.solver);
  EXPECT_EQ(decoded.options, request.options);
  EXPECT_EQ(decoded.derived_kind, request.derived_kind);
  EXPECT_EQ(decoded.threshold, request.threshold);
  EXPECT_FALSE(decoded.use_cache);
  EXPECT_FALSE(decoded.allow_pushdown);
  EXPECT_TRUE(decoded.include_instances);
}

TEST(ProtocolMessagesTest, QueryResponseRoundTripWithInstanceVector) {
  QueryResponseWire response;
  response.solver = "mwtt";
  response.cache_hit = true;
  response.pushdown = true;
  response.complete = false;
  response.goal = "top-5";
  response.result_size = -1;
  response.ranked = {{3, "LeBron", 0.91}, {1, "", 0.5}};
  response.count_threshold = 0.125;
  response.stats.solver = "mwtt";
  response.stats.solve_millis = 1.5;
  response.stats.dominance_tests = 1234;
  response.stats.early_exit_depth = 3;
  response.instance_probs = {0.25, 0.0, 1.0};
  QueryResponseWire decoded;
  ASSERT_TRUE(decoded.DecodePayload(response.EncodePayload()).ok());
  EXPECT_EQ(decoded.solver, "mwtt");
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_TRUE(decoded.pushdown);
  EXPECT_FALSE(decoded.complete);
  EXPECT_EQ(decoded.goal, "top-5");
  ASSERT_EQ(decoded.ranked.size(), 2u);
  EXPECT_EQ(decoded.ranked[0].object_id, 3);
  EXPECT_EQ(decoded.ranked[0].name, "LeBron");
  EXPECT_EQ(decoded.ranked[0].prob, 0.91);
  EXPECT_EQ(decoded.stats.dominance_tests, 1234);
  EXPECT_EQ(decoded.instance_probs, response.instance_probs);
}

TEST(ProtocolMessagesTest, StatsRoundTrip) {
  StatsResponse response;
  response.cache_hits = 10;
  response.cache_misses = 3;
  response.cache_entries = 2;
  response.pooled_contexts = 4;
  response.latency_count = 13;
  response.latency_window = 13;
  response.latency_p95_ms = 2.25;
  response.datasets = {{"nba", 50, 4000, 4, false}, {"nba#50", 25, 2000, 4,
                       true}};
  response.has_index_stats = true;
  response.kdtree_builds = 1;
  response.parent_index_hits = 9;
  response.kernel_arch = "avx2";
  StatsResponse decoded;
  ASSERT_TRUE(decoded.DecodePayload(response.EncodePayload()).ok());
  EXPECT_EQ(decoded.cache_hits, 10);
  EXPECT_EQ(decoded.latency_p95_ms, 2.25);
  ASSERT_EQ(decoded.datasets.size(), 2u);
  EXPECT_EQ(decoded.datasets[1].name, "nba#50");
  EXPECT_TRUE(decoded.datasets[1].is_view);
  EXPECT_EQ(decoded.kernel_arch, "avx2");
  EXPECT_TRUE(decoded.has_index_stats);
  EXPECT_EQ(decoded.parent_index_hits, 9);
}

TEST(ProtocolMessagesTest, ErrorResponseRoundTripsEveryCode) {
  for (const Status& status :
       {Status::InvalidArgument("bad"), Status::FailedPrecondition("pre"),
        Status::NotFound("missing"), Status::Internal("boom"),
        Status::Unimplemented("todo")}) {
    ErrorResponse error = ErrorResponse::From(status);
    ErrorResponse decoded;
    ASSERT_TRUE(decoded.DecodePayload(error.EncodePayload()).ok());
    const Status back = decoded.ToStatus();
    EXPECT_EQ(back.code(), status.code());
    EXPECT_EQ(back.message(), status.message());
  }
}

TEST(ProtocolMessagesTest, DecodersRejectTruncatedPayloads) {
  QueryResponseWire response;
  response.solver = "kdtt+";
  response.ranked = {{1, "a", 0.5}};
  response.instance_probs = {1.0, 2.0};
  const std::string payload = response.EncodePayload();
  // Every strict prefix must fail cleanly (never crash or accept).
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    QueryResponseWire decoded;
    EXPECT_FALSE(decoded.DecodePayload(payload.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes was accepted";
  }
  // Appending garbage must fail Finish.
  QueryResponseWire decoded;
  EXPECT_FALSE(decoded.DecodePayload(payload + "x").ok());
}

TEST(ProtocolMessagesTest, BadEnumValuesAreRejected) {
  {
    LoadDatasetRequest request;
    WireWriter w;
    w.Str("n");
    w.U8(250);  // not a LoadSource
    w.Str("p");
    w.Bool(false);
    EXPECT_FALSE(request.DecodePayload(w.bytes()).ok());
  }
  {
    QueryRequestWire request;
    WireWriter w;
    w.Str("d");
    w.Str("c");
    w.Str("s");
    w.StrVec({});
    w.U8(99);  // not a WireDerivedKind
    w.I32(1);
    w.F64(0.5);
    w.I32(1);
    w.Bool(true);
    w.Bool(true);
    w.Bool(false);
    EXPECT_FALSE(request.DecodePayload(w.bytes()).ok());
  }
}

// ------------------------------------------------------ wire v3 additions

TEST(ProtocolMessagesTest, QueryRequestScopeFieldsRoundTrip) {
  QueryRequestWire request;
  request.dataset = "nba";
  request.scope_begin = 7;
  request.scope_end = 19;
  QueryRequestWire decoded;
  ASSERT_TRUE(decoded.DecodePayload(request.EncodePayload()).ok());
  EXPECT_EQ(decoded.scope_begin, 7);
  EXPECT_EQ(decoded.scope_end, 19);
  // Unscoped stays the -1/-1 sentinel through the codec.
  QueryRequestWire unscoped;
  ASSERT_TRUE(decoded.DecodePayload(unscoped.EncodePayload()).ok());
  EXPECT_EQ(decoded.scope_begin, -1);
  EXPECT_EQ(decoded.scope_end, -1);
}

TEST(ProtocolMessagesTest, ObjectReportsAndOffsetRoundTripAndRejectTruncation) {
  QueryResponseWire response;
  response.solver = "kdtt+";
  response.complete = false;
  response.goal = "top-3 scope=[4,9)";
  response.instance_probs = {0.5, 0.25};
  response.instance_offset = 11;
  response.object_reports = {{4, 0, 0.1, 0.9},
                             {5, 1, 0.75, 0.75},
                             {8, 2, 0.0, 0.05}};
  const std::string payload = response.EncodePayload();
  QueryResponseWire decoded;
  ASSERT_TRUE(decoded.DecodePayload(payload).ok());
  EXPECT_EQ(decoded.instance_offset, 11);
  ASSERT_EQ(decoded.object_reports.size(), 3u);
  EXPECT_EQ(decoded.object_reports[1].object_id, 5);
  EXPECT_EQ(decoded.object_reports[1].decision, 1);
  EXPECT_EQ(decoded.object_reports[2].lower, 0.0);
  EXPECT_EQ(decoded.object_reports[2].upper, 0.05);
  // Every strict prefix of the v3 tail must fail cleanly, like the rest of
  // the payload (never crash, never accept).
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    QueryResponseWire partial;
    EXPECT_FALSE(partial.DecodePayload(payload.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes was accepted";
  }
}

TEST(ProtocolMessagesTest, HostileObjectReportCountRejectedBeforeAllocation) {
  // A forged count field must be refused by the payload-size plausibility
  // check (each report is 21 bytes), not by attempting a huge reserve.
  WireWriter w;
  w.Str("kdtt+");
  w.Bool(false);
  w.Bool(false);
  w.Bool(true);
  w.Str("full");
  w.I32(0);
  w.U32(0);  // ranked
  w.F64(0.0);
  WireSolverStats{}.Encode(w);
  w.F64Vec({});
  w.I32(0);
  w.U32(0x7fffffffu);  // object report count: hostile
  QueryResponseWire decoded;
  const Status status = decoded.DecodePayload(w.bytes());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("report count"), std::string::npos);
}

TEST(ProtocolMessagesTest, BadObjectDecisionIsRejected) {
  QueryResponseWire response;
  response.object_reports = {{0, 3, 0.0, 1.0}};  // 3 is not an ObjectDecision
  QueryResponseWire decoded;
  const Status status = decoded.DecodePayload(response.EncodePayload());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolMessagesTest, RetryLaterRoundTripAndTruncation) {
  RetryLaterResponse retry;
  retry.retry_after_ms = 250;
  retry.reason = "client query rate exceeded";
  const std::string payload = retry.EncodePayload();
  RetryLaterResponse decoded;
  ASSERT_TRUE(decoded.DecodePayload(payload).ok());
  EXPECT_EQ(decoded.retry_after_ms, 250u);
  EXPECT_EQ(decoded.reason, retry.reason);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    RetryLaterResponse partial;
    EXPECT_FALSE(partial.DecodePayload(payload.substr(0, cut)).ok());
  }
  EXPECT_FALSE(decoded.DecodePayload(payload + "x").ok());
}

// ------------------------------------------------------------- framing

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, FrameRoundTrip) {
  const std::string payload = "some payload bytes";
  ASSERT_TRUE(SendFrame(fds_[0], MessageType::kQuery, payload).ok());
  auto frame = RecvFrame(fds_[1]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, MessageType::kQuery);
  EXPECT_EQ(frame->payload, payload);
}

TEST_F(FramingTest, EmptyPayloadRoundTrip) {
  ASSERT_TRUE(SendFrame(fds_[0], MessageType::kPing, "").ok());
  auto frame = RecvFrame(fds_[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MessageType::kPing);
  EXPECT_TRUE(frame->payload.empty());
}

TEST_F(FramingTest, CleanEofIsNotFound) {
  ::close(fds_[0]);
  fds_[0] = -1;
  auto frame = RecvFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, TruncatedHeaderIsInvalid) {
  const char partial[3] = {1, 2, 3};
  ASSERT_EQ(::write(fds_[0], partial, sizeof(partial)), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  auto frame = RecvFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FramingTest, BadMagicIsRejected) {
  // length=0, magic=0xFFFF, version, type.
  const unsigned char header[8] = {0, 0, 0, 0, 0xFF, 0xFF, 1, 1};
  ASSERT_EQ(::write(fds_[0], header, sizeof(header)), 8);
  auto frame = RecvFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("magic"), std::string::npos);
}

TEST_F(FramingTest, FutureVersionIsRejected) {
  unsigned char header[8] = {0, 0, 0, 0, 0, 0, kWireVersion + 1, 1};
  header[4] = kWireMagic & 0xff;
  header[5] = (kWireMagic >> 8) & 0xff;
  ASSERT_EQ(::write(fds_[0], header, sizeof(header)), 8);
  auto frame = RecvFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("version"), std::string::npos);
}

TEST_F(FramingTest, OversizedFrameIsRejectedBySenderAndReceiver) {
  // Sender side: the guard fires before any bytes hit the wire.
  std::string big;
  big.resize(kMaxPayloadBytes + 1);
  EXPECT_FALSE(SendFrame(fds_[0], MessageType::kQuery, big).ok());

  // Receiver side: a forged header claiming a huge payload is rejected
  // before allocation.
  unsigned char header[8] = {0, 0, 0, 0, 0, 0, kWireVersion, 1};
  const uint32_t huge = kMaxPayloadBytes + 1;
  header[0] = huge & 0xff;
  header[1] = (huge >> 8) & 0xff;
  header[2] = (huge >> 16) & 0xff;
  header[3] = (huge >> 24) & 0xff;
  header[4] = kWireMagic & 0xff;
  header[5] = (kWireMagic >> 8) & 0xff;
  ASSERT_EQ(::write(fds_[0], header, sizeof(header)), 8);
  auto frame = RecvFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("max-frame"), std::string::npos);
}

TEST_F(FramingTest, LargeFrameRoundTripsAcrossPartialReads) {
  // Large enough to exceed socket buffers, forcing the short-read/short-
  // write loops to do real work. Sender runs on a thread so the blocking
  // pair cannot deadlock.
  std::string payload;
  payload.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i) {
    payload.push_back(static_cast<char>(i * 31 + 7));
  }
  std::thread sender([&] {
    EXPECT_TRUE(SendFrame(fds_[0], MessageType::kQueryResult, payload).ok());
  });
  auto frame = RecvFrame(fds_[1]);
  sender.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, payload);
}

}  // namespace
}  // namespace net
}  // namespace arsp
