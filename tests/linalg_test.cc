// Copyright 2026 The ARSP Authors.

#include "src/geometry/linalg.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(LinalgTest, SolvesIdentity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const auto x = SolveLinearSystem(a, {3.0, -4.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], -4.0);
}

TEST(LinalgTest, SolvesGeneralSystem) {
  // 2x + y = 5 ; x - y = 1  => x = 2, y = 1.
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = -1.0;
  const auto x = SolveLinearSystem(a, {5.0, 1.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(LinalgTest, RequiresPivoting) {
  // First pivot is zero; solvable only with row swaps.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = SolveLinearSystem(a, {7.0, 9.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 9.0, 1e-12);
  EXPECT_NEAR((*x)[1], 7.0, 1e-12);
}

TEST(LinalgTest, DetectsSingularMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).has_value());
}

TEST(LinalgTest, SolvesThreeByThree) {
  // Simplex-style system: x+y+z=1, y-x=0 (tight), z=0 (tight).
  Matrix a(3, 3);
  for (int c = 0; c < 3; ++c) a(0, c) = 1.0;
  a(1, 0) = -1.0;
  a(1, 1) = 1.0;
  a(2, 2) = 1.0;
  const auto x = SolveLinearSystem(a, {1.0, 0.0, 0.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 0.5, 1e-12);
  EXPECT_NEAR((*x)[1], 0.5, 1e-12);
  EXPECT_NEAR((*x)[2], 0.0, 1e-12);
}

}  // namespace
}  // namespace arsp
