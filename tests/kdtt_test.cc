// Copyright 2026 The ARSP Authors.
//
// Focused regression tests for the kd-ASP* traversal: the χ pruning rules,
// the own-object-full corner case the printed Algorithm 1 misses (see
// DESIGN.md), duplicate leaves, and the KDTT vs KDTT+ construction modes.

#include <gtest/gtest.h>

#include "src/core/enum_algorithm.h"
#include "src/core/kdtt_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::WrRegion;

TEST(KdttTest, OwnObjectFullCornerCase) {
  // Object 0 has all of its mass on one point p (σ[0] = 1 at that node);
  // the instance at p still has non-zero probability because only its own
  // object fully dominates it. The paper's printed Algorithm 1 (χ = 0 check
  // only) would drop it.
  UncertainDatasetBuilder builder(2);
  builder.AddObject({Point{0.2, 0.2}, Point{0.2, 0.2}}, {0.5, 0.5});
  builder.AddSingleton(Point{0.8, 0.8}, 0.5);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);

  const ArspResult expected = ComputeArspEnum(*dataset, region);
  // Duplicates of object 0 do not hurt each other (same object), so each
  // keeps its existence probability; object 1 is dominated in every world
  // because object 0 (total mass 1) always materializes at (0.2, 0.2).
  EXPECT_NEAR(expected.instance_probs[0], 0.5, 1e-12);
  EXPECT_NEAR(expected.instance_probs[1], 0.5, 1e-12);
  EXPECT_NEAR(expected.instance_probs[2], 0.0, 1e-12);
  const ArspResult kdtt = ComputeArspKdtt(*dataset, region);
  EXPECT_LT(MaxAbsDiff(expected, kdtt), 1e-12);
}

TEST(KdttTest, FullForeignObjectZeroesSubtree) {
  // A certain instance at the origin dominates everything: all other
  // objects' probabilities must be exactly zero and χ pruning must fire.
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.0, 0.0}, 1.0);
  for (int j = 0; j < 20; ++j) {
    builder.AddObject({Point{0.3 + 0.01 * j, 0.4}, Point{0.5, 0.3 + 0.01 * j}},
                      {0.5, 0.5});
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult result = ComputeArspKdtt(*dataset, region);
  EXPECT_NEAR(result.instance_probs[0], 1.0, 1e-12);
  for (int i = 1; i < dataset->num_instances(); ++i) {
    EXPECT_EQ(result.instance_probs[static_cast<size_t>(i)], 0.0) << i;
  }
  EXPECT_GT(result.nodes_pruned, 0);
}

TEST(KdttTest, PrunedRunVisitsFewerNodesThanPrebuilt) {
  // KDTT+ skips construction of pruned subtrees, so with a dominating
  // certain object it must touch no more nodes than KDTT.
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.0, 0.0}, 1.0);
  Rng rng(5);
  for (int j = 0; j < 100; ++j) {
    builder.AddSingleton(Point{rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)},
                         1.0);
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult plus =
      ComputeArspKdtt(*dataset, region, {.integrated = true});
  const ArspResult base =
      ComputeArspKdtt(*dataset, region, {.integrated = false});
  EXPECT_LT(MaxAbsDiff(plus, base), 1e-12);
  EXPECT_LE(plus.nodes_visited, base.nodes_visited);
}

TEST(KdttTest, AllInstancesIdentical) {
  // Degenerate dataset: every instance of every object at the same point.
  UncertainDatasetBuilder builder(3);
  for (int j = 0; j < 5; ++j) {
    builder.AddObject({Point{0.5, 0.5, 0.5}, Point{0.5, 0.5, 0.5}},
                      {0.4, 0.4});
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(3, 2);
  const ArspResult expected = ComputeArspEnum(*dataset, region);
  const ArspResult kdtt = ComputeArspKdtt(*dataset, region);
  EXPECT_LT(MaxAbsDiff(expected, kdtt), 1e-10);
  // Sanity: each instance survives iff no other object materializes at the
  // point: p * (1 - 0.8)^4.
  EXPECT_NEAR(kdtt.instance_probs[0], 0.4 * std::pow(0.2, 4), 1e-10);
}

TEST(KdttTest, MixedCertainAndUncertainChains) {
  // A chain of points where each dominates the next, with alternating
  // existence probabilities; closed form: Pr(i) = p_i * Π_{j<i} (1 - p_j).
  UncertainDatasetBuilder builder(2);
  const std::vector<double> probs = {0.9, 0.5, 1.0, 0.3, 0.8};
  for (size_t i = 0; i < probs.size(); ++i) {
    builder.AddSingleton(Point{0.1 * (i + 1), 0.1 * (i + 1)}, probs[i]);
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult result = ComputeArspKdtt(*dataset, region);
  double survive = 1.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(result.instance_probs[i], probs[i] * survive, 1e-12) << i;
    survive *= (1.0 - probs[i]);
  }
}

TEST(KdttTest, CountersArePopulated) {
  const UncertainDataset dataset = RandomDataset(30, 4, 3, 0.0, 9);
  const PreferenceRegion region = WrRegion(3, 2);
  const ArspResult result = ComputeArspKdtt(dataset, region);
  EXPECT_GT(result.nodes_visited, 0);
  EXPECT_GT(result.dominance_tests, 0);
}

TEST(KdttTest, LargeRandomAgainstLoop) {
  const UncertainDataset dataset = RandomDataset(120, 5, 4, 0.25, 31);
  const PreferenceRegion region = WrRegion(4, 3);
  EXPECT_LT(MaxAbsDiff(ComputeArspLoop(dataset, region),
                       ComputeArspKdtt(dataset, region)),
            1e-8);
}

}  // namespace
}  // namespace arsp
