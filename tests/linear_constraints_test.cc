// Copyright 2026 The ARSP Authors.

#include "src/prefs/linear_constraints.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(LinearConstraintsTest, EmptySetAcceptsEverything) {
  const LinearConstraints lc(3);
  EXPECT_EQ(lc.num_constraints(), 0);
  EXPECT_TRUE(lc.Satisfies(Point{0.2, 0.3, 0.5}));
}

TEST(LinearConstraintsTest, SlackSign) {
  LinearConstraint row{{1.0, -1.0}, 0.0};  // ω1 - ω2 <= 0
  EXPECT_LT(row.Slack(Point{0.2, 0.8}), 0.0);
  EXPECT_GT(row.Slack(Point{0.8, 0.2}), 0.0);
  EXPECT_DOUBLE_EQ(row.Slack(Point{0.5, 0.5}), 0.0);
}

TEST(LinearConstraintsTest, SatisfiesWithTolerance) {
  LinearConstraints lc(2);
  lc.Add({1.0, -1.0}, 0.0);
  EXPECT_TRUE(lc.Satisfies(Point{0.5, 0.5}));
  EXPECT_TRUE(lc.Satisfies(Point{0.5 + 1e-12, 0.5}));   // within eps
  EXPECT_FALSE(lc.Satisfies(Point{0.6, 0.4}));
}

TEST(LinearConstraintsTest, CreateValidatesRowWidth) {
  const auto bad = LinearConstraints::Create(
      3, {LinearConstraint{{1.0, 2.0}, 0.0}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  const auto good = LinearConstraints::Create(
      2, {LinearConstraint{{1.0, -1.0}, 0.5}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->num_constraints(), 1);
}

TEST(LinearConstraintsTest, CreateRejectsZeroDim) {
  EXPECT_FALSE(LinearConstraints::Create(0, {}).ok());
}

TEST(LinearConstraintsTest, MultipleRowsAllMustHold) {
  LinearConstraints lc(3);
  lc.Add({1.0, -1.0, 0.0}, 0.0);  // ω1 <= ω2
  lc.Add({0.0, 1.0, -1.0}, 0.0);  // ω2 <= ω3
  EXPECT_TRUE(lc.Satisfies(Point{0.1, 0.3, 0.6}));
  EXPECT_FALSE(lc.Satisfies(Point{0.1, 0.6, 0.3}));
}

}  // namespace
}  // namespace arsp
