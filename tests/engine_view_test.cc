// Copyright 2026 The ARSP Authors.
//
// Engine-level tests of the zero-copy data plane: AddView handles, the
// Fig. 6-style m% sweep invariant (exactly one full kd-/R-tree build plus
// per-view delta work, no TakeObjects copies anywhere on the path), view
// result-cache fingerprints, derived queries carrying base object ids, and
// DropDataset cascade semantics.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/core/engine.h"
#include "src/uncertain/generators.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;

ExecutionContext::IndexBuildStats SweepStats(
    const ArspEngine& engine, DatasetHandle base,
    const std::vector<DatasetHandle>& views) {
  ExecutionContext::IndexBuildStats total = engine.index_stats(base);
  for (const DatasetHandle& v : views) {
    total += engine.index_stats(v);
  }
  return total;
}

TEST(EngineViewTest, AddViewValidation) {
  ArspEngine engine;
  const DatasetHandle base =
      engine.AddDataset(RandomDataset(10, 2, 2, 0.0, 21));
  EXPECT_FALSE(engine.AddView(DatasetHandle{999}, ViewSpec::Prefix(1)).ok());
  EXPECT_FALSE(engine.AddView(base, ViewSpec::Prefix(11)).ok());
  auto view = engine.AddView(base, ViewSpec::Prefix(5));
  ASSERT_TRUE(view.ok());
  // Views of views are rejected with a pointer back to the base.
  auto nested = engine.AddView(*view, ViewSpec::Prefix(2));
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.view(*view).num_objects(), 5);
  EXPECT_EQ(engine.dataset(*view).get(), engine.dataset(base).get());
}

// The acceptance-criterion test: a 10%..100% prefix sweep through the
// engine performs exactly ONE full kd-tree build (DUAL sweep) and ONE full
// R-tree bulk load (B&B sweep); every view run is served through the base
// context's indexes and score storage.
TEST(EngineViewTest, PrefixSweepBuildsIndexesExactlyOnce) {
  ArspEngine engine;
  const UncertainDataset data = RandomDataset(40, 2, 3, 0.2, 22);
  const int m = data.num_objects();
  const DatasetHandle base = engine.AddDataset(data);

  const auto wr = testing_util::RandomWr(3, 22);
  const auto region = testing_util::WrRegion(3, 2);

  std::vector<DatasetHandle> views;
  for (int pct = 10; pct <= 100; pct += 10) {
    auto view = engine.AddView(
        base, ViewSpec::Prefix(std::max(1, m * pct / 100)));
    ASSERT_TRUE(view.ok());
    views.push_back(*view);
  }

  // DUAL probes the shared kd-tree on every view of the sweep.
  for (const DatasetHandle& v : views) {
    QueryRequest request;
    request.dataset = v;
    request.constraints = ConstraintSpec::WeightRatios(wr);
    request.solver = "dual";
    request.use_cache = false;  // every step really solves
    ASSERT_TRUE(engine.Solve(request).ok());
  }
  ExecutionContext::IndexBuildStats stats = SweepStats(engine, base, views);
  EXPECT_EQ(stats.kdtree_builds, 1);  // ONE full build for the whole sweep
  EXPECT_GE(stats.parent_index_hits, static_cast<int64_t>(views.size()));

  // B&B walks the shared R-tree; KDTT+ iterates shared score spans.
  for (const DatasetHandle& v : views) {
    for (const char* solver : {"bnb", "kdtt+"}) {
      QueryRequest request;
      request.dataset = v;
      request.constraints = ConstraintSpec::Region(region);
      request.solver = solver;
      request.use_cache = false;
      ASSERT_TRUE(engine.Solve(request).ok());
    }
  }
  stats = SweepStats(engine, base, views);
  EXPECT_EQ(stats.rtree_builds, 1);   // ONE bulk load for the whole sweep
  EXPECT_EQ(stats.kdtree_builds, 1);  // unchanged by the region sweep
  // Score storage: one full SoA mapping per constraint family on the base
  // context; every view run reuses it (prefix spans are zero-copy).
  EXPECT_LE(stats.score_maps, 2);
  EXPECT_GE(stats.score_reuses, static_cast<int64_t>(views.size()));
}

TEST(EngineViewTest, FullSpecViewDerivesInsteadOfRebuilding) {
  // A Full-spec view is still a view handle: its pooled queries must
  // derive from the base context, not pay a duplicate full build.
  ArspEngine engine;
  const DatasetHandle base =
      engine.AddDataset(RandomDataset(20, 2, 3, 0.0, 30));
  auto alias = engine.AddView(base, ViewSpec::Full());
  ASSERT_TRUE(alias.ok());
  const auto wr = testing_util::RandomWr(3, 30);
  for (const DatasetHandle handle : {base, *alias}) {
    QueryRequest request;
    request.dataset = handle;
    request.constraints = ConstraintSpec::WeightRatios(wr);
    request.solver = "dual";
    request.use_cache = false;
    ASSERT_TRUE(engine.Solve(request).ok());
  }
  const ExecutionContext::IndexBuildStats stats =
      SweepStats(engine, base, {*alias});
  EXPECT_EQ(stats.kdtree_builds, 1);
  EXPECT_GE(stats.parent_index_hits, 1);
}

TEST(EngineViewTest, ViewResultsMatchMaterializedCopies) {
  ArspEngine engine;
  const UncertainDataset data = RandomDataset(25, 3, 3, 0.4, 23);
  const DatasetHandle base = engine.AddDataset(data);
  const auto region = testing_util::WrRegion(3, 1);

  for (int count : {6, 13, 25}) {
    auto view_handle = engine.AddView(base, ViewSpec::Prefix(count));
    ASSERT_TRUE(view_handle.ok());
    const DatasetHandle copy_handle =
        engine.AddDataset(TakeObjects(data, count));
    for (const char* solver : {"kdtt+", "loop", "bnb"}) {
      QueryRequest on_view;
      on_view.dataset = *view_handle;
      on_view.constraints = ConstraintSpec::Region(region);
      on_view.solver = solver;
      QueryRequest on_copy = on_view;
      on_copy.dataset = copy_handle;
      auto view_response = engine.Solve(on_view);
      auto copy_response = engine.Solve(on_copy);
      ASSERT_TRUE(view_response.ok());
      ASSERT_TRUE(copy_response.ok());
      EXPECT_LE(MaxAbsDiff(*view_response->result, *copy_response->result),
                1e-12)
          << solver << " prefix " << count;
    }
  }
}

TEST(EngineViewTest, CacheFingerprintsAreDistinctPerView) {
  ArspEngine engine;
  const DatasetHandle base =
      engine.AddDataset(RandomDataset(20, 2, 2, 0.0, 24));
  auto half = engine.AddView(base, ViewSpec::Prefix(10));
  auto full_view = engine.AddView(base, ViewSpec::Prefix(20));
  ASSERT_TRUE(half.ok());
  ASSERT_TRUE(full_view.ok());
  const auto region = testing_util::WrRegion(2, 1);

  auto solve = [&](DatasetHandle handle) {
    QueryRequest request;
    request.dataset = handle;
    request.constraints = ConstraintSpec::Region(region);
    request.solver = "kdtt+";
    auto response = engine.Solve(request);
    ARSP_CHECK(response.ok());
    return *std::move(response);
  };

  // Same constraints + solver on three different handles: all misses (the
  // handle id is part of the fingerprint), then each repeat hits its own
  // entry with the right payload size.
  const QueryResponse base_first = solve(base);
  const QueryResponse half_first = solve(*half);
  const QueryResponse full_first = solve(*full_view);
  EXPECT_FALSE(base_first.cache_hit);
  EXPECT_FALSE(half_first.cache_hit);
  EXPECT_FALSE(full_first.cache_hit);
  EXPECT_EQ(static_cast<int>(half_first.result->instance_probs.size()),
            engine.view(*half).num_instances());

  const QueryResponse half_again = solve(*half);
  EXPECT_TRUE(half_again.cache_hit);
  EXPECT_EQ(half_again.result.get(), half_first.result.get());
  const QueryResponse base_again = solve(base);
  EXPECT_TRUE(base_again.cache_hit);
  EXPECT_EQ(base_again.result.get(), base_first.result.get());
}

TEST(EngineViewTest, RankedResultsCarryBaseObjectIds) {
  ArspEngine engine;
  const UncertainDataset data = RandomDataset(12, 2, 2, 0.0, 25);
  const DatasetHandle base = engine.AddDataset(data);
  auto view = engine.AddView(base, ViewSpec::Subset({8, 9, 10, 11}));
  ASSERT_TRUE(view.ok());
  QueryRequest request;
  request.dataset = *view;
  request.constraints = ConstraintSpec::Region(testing_util::WrRegion(2, 1));
  request.derived.kind = DerivedKind::kTopKObjects;
  request.derived.k = -1;
  auto response = engine.Solve(request);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->ranked.empty());
  std::set<int> allowed = {8, 9, 10, 11};
  for (const auto& [object, prob] : response->ranked) {
    EXPECT_TRUE(allowed.count(object)) << object;
  }
}

TEST(EngineViewTest, DroppingTheBaseCascadesToViews) {
  ArspEngine engine;
  const DatasetHandle base =
      engine.AddDataset(RandomDataset(10, 2, 2, 0.0, 26));
  auto view = engine.AddView(base, ViewSpec::Prefix(4));
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(engine.DropDataset(base).ok());
  EXPECT_EQ(engine.dataset(*view), nullptr);
  EXPECT_FALSE(engine.view(*view).valid());
  QueryRequest request;
  request.dataset = *view;
  request.constraints = ConstraintSpec::Region(testing_util::WrRegion(2, 1));
  auto response = engine.Solve(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  // Dropping a view leaves the base (and sibling views) alone.
  const DatasetHandle base2 =
      engine.AddDataset(RandomDataset(10, 2, 2, 0.0, 27));
  auto v1 = engine.AddView(base2, ViewSpec::Prefix(3));
  auto v2 = engine.AddView(base2, ViewSpec::Prefix(7));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(engine.DropDataset(*v1).ok());
  EXPECT_NE(engine.dataset(base2), nullptr);
  EXPECT_TRUE(engine.view(*v2).valid());
}

TEST(EngineViewTest, ConcurrentViewSweepMatchesSerialAndBuildsOnce) {
  // SolveBatch over every prefix view at once: worker threads race to
  // create/derive contexts and first-touch the shared parent's artifacts.
  // Results must equal the serial ones and the sweep must still perform
  // exactly one full index build (TSan covers the data-race side).
  ArspEngine engine;
  const UncertainDataset data = RandomDataset(30, 2, 3, 0.2, 29);
  const DatasetHandle base = engine.AddDataset(data);
  const auto wr = testing_util::RandomWr(3, 29);

  std::vector<DatasetHandle> views;
  std::vector<QueryRequest> requests;
  for (int pct = 10; pct <= 100; pct += 10) {
    auto view = engine.AddView(
        base, ViewSpec::Prefix(std::max(1, data.num_objects() * pct / 100)));
    ASSERT_TRUE(view.ok());
    views.push_back(*view);
    QueryRequest request;
    request.dataset = *view;
    request.constraints = ConstraintSpec::WeightRatios(wr);
    request.solver = "dual";
    request.use_cache = false;
    requests.push_back(std::move(request));
  }

  const std::vector<StatusOr<QueryResponse>> batch =
      engine.SolveBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    auto serial = engine.Solve(requests[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_LE(MaxAbsDiff(*batch[i]->result, *serial->result), 0.0);
  }
  const ExecutionContext::IndexBuildStats stats =
      SweepStats(engine, base, views);
  EXPECT_EQ(stats.kdtree_builds, 1);
}

TEST(EngineViewTest, AutoSelectionSeesTheViewShape) {
  // A big base with a tiny view: "auto" must pick by the view's instance
  // count (LOOP territory), not the base's.
  ArspEngine engine;
  const DatasetHandle base =
      engine.AddDataset(RandomDataset(200, 3, 3, 0.0, 28));
  auto tiny = engine.AddView(base, ViewSpec::Prefix(5));
  ASSERT_TRUE(tiny.ok());
  QueryRequest request;
  request.dataset = *tiny;
  request.constraints = ConstraintSpec::Region(testing_util::WrRegion(3, 1));
  request.solver = "auto";
  auto response = engine.Solve(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->solver, "loop");
}

}  // namespace
}  // namespace arsp
