// Copyright 2026 The ARSP Authors.
//
// View-vs-copy equivalence: for random datasets and random prefix/subset
// specs, every registry solver run on a DatasetView must agree with the
// same solver run on the materialized copy of that view — both as a
// standalone view context and as a context Derived from the full-view
// parent (the zero-copy data plane's two execution paths). Plus SoA-vs-AoS
// ScoreMapper identity (bit-exact) and the zero-copy span-sharing property
// itself.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"
#include "src/uncertain/dataset_view.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::RandomWr;

// Both solver runs perform identical arithmetic on identical values, except
// that B&B's shared-tree traversal may drain tied heap entries in a
// different order (summation order inside σ), so agreement is asserted to a
// tight tolerance rather than bit-exactly.
constexpr double kTol = 1e-12;

ArspResult MustSolve(const std::string& name, ExecutionContext& context) {
  auto solver = SolverRegistry::Create(name);
  ARSP_CHECK(solver.ok());
  auto result = (*solver)->Solve(context);
  ARSP_CHECK_MSG(result.ok(), "%s: %s", name.c_str(),
                 result.status().ToString().c_str());
  return std::move(result).value();
}

// Runs every registry solver (skipping those whose capability flags reject
// the context — both paths must agree on that too) on:
//   (a) the materialized copy,
//   (b) a standalone context over the view,
//   (c) a context derived from a full-view parent,
// and asserts (a) == (b) == (c).
void CheckAllSolvers(const std::shared_ptr<const UncertainDataset>& base,
                     const ViewSpec& spec) {
  auto view = DatasetView::Create(base, spec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const UncertainDataset copy = view->Materialize();

  const WeightRatioConstraints wr = RandomWr(base->dim(), 991);
  const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);

  for (const std::string& name : SolverRegistry::Names()) {
    if (name == "auto") continue;
    auto probe = SolverRegistry::Create(name);
    ASSERT_TRUE(probe.ok());
    const uint32_t caps = (*probe)->capabilities();
    // ENUM on the larger specs would blow the world budget; it is covered
    // by the small cases.
    if ((caps & kCapExponentialTime) && view->NumPossibleWorlds() > 5e5) {
      continue;
    }
    const bool use_wr = (caps & kCapRequiresWeightRatios) != 0;

    auto make_copy_context = [&]() {
      return use_wr ? std::make_unique<ExecutionContext>(copy, wr)
                    : std::make_unique<ExecutionContext>(copy, region);
    };
    auto make_view_context = [&]() {
      return use_wr ? std::make_unique<ExecutionContext>(*view, wr)
                    : std::make_unique<ExecutionContext>(*view, region);
    };
    auto parent = use_wr ? std::make_shared<ExecutionContext>(
                               DatasetView(base), wr)
                         : std::make_shared<ExecutionContext>(
                               DatasetView(base), region);

    auto copy_context = make_copy_context();
    const Status copy_ok = (*probe)->ValidateContext(*copy_context);
    auto view_context = make_view_context();
    const Status view_ok = (*probe)->ValidateContext(*view_context);
    // The view and its materialization have identical shape, so the solver
    // must accept or reject both.
    ASSERT_EQ(copy_ok.ok(), view_ok.ok()) << name;
    if (!copy_ok.ok()) continue;

    const ArspResult on_copy = MustSolve(name, *copy_context);
    const ArspResult standalone = MustSolve(name, *view_context);
    EXPECT_LE(MaxAbsDiff(on_copy, standalone), kTol)
        << name << " standalone view vs copy, spec " << spec.CacheKey();

    auto derived = ExecutionContext::Derive(parent, *view);
    const ArspResult via_parent = MustSolve(name, *derived);
    EXPECT_LE(MaxAbsDiff(on_copy, via_parent), kTol)
        << name << " derived view vs copy, spec " << spec.CacheKey();
  }
}

TEST(ViewEquivalence, PrefixViewsSmall2d) {
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(8, 1, 2, 0.5, 101));  // single-instance: dual-2d-ms runs
  for (int count : {1, 3, 8}) {
    CheckAllSolvers(base, ViewSpec::Prefix(count));
  }
}

TEST(ViewEquivalence, SubsetViewsSmall2d) {
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(8, 1, 2, 0.5, 102));
  CheckAllSolvers(base, ViewSpec::Subset({0, 2, 5, 7}));
  CheckAllSolvers(base, ViewSpec::Subset({6, 1}));
}

TEST(ViewEquivalence, PrefixViewsMultiInstance3d) {
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(30, 3, 3, 0.3, 103));
  for (int count : {7, 19, 30}) {
    CheckAllSolvers(base, ViewSpec::Prefix(count));
  }
}

TEST(ViewEquivalence, SubsetViewsMultiInstance3d) {
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(30, 3, 3, 0.3, 104));
  CheckAllSolvers(base, ViewSpec::Subset({1, 4, 9, 16, 25, 29}));
  CheckAllSolvers(base, ViewSpec::Subset({28, 0, 14, 3}));
}

TEST(ViewEquivalence, DuplicateProneGridData) {
  // Grid-snapped coordinates produce exact ties and duplicates — the cases
  // where leaf/chi handling and tie batching must agree across paths.
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(20, 3, 2, 0.4, 105, /*grid=*/true));
  CheckAllSolvers(base, ViewSpec::Prefix(11));
  CheckAllSolvers(base, ViewSpec::Subset({0, 1, 5, 6, 7, 13, 19}));
}

// ---------------------------------------------------------- SoA identity

TEST(ScoreMapperSoA, MapViewMatchesAosMapBitExactly) {
  const UncertainDataset dataset = RandomDataset(25, 3, 3, 0.2, 106);
  const PreferenceRegion region = testing_util::WrRegion(3, 2);
  const ScoreMapper mapper(region);
  const DatasetView view(dataset);
  const ScoreBuffer buffer = mapper.MapView(view);
  ASSERT_EQ(buffer.size(), dataset.num_instances());
  ASSERT_EQ(buffer.dim, mapper.mapped_dim());
  for (int i = 0; i < buffer.size(); ++i) {
    const Point aos = mapper.Map(dataset.instance(i).point);  // AoS path
    const double* soa = buffer.row(i);
    for (int k = 0; k < buffer.dim; ++k) {
      EXPECT_EQ(aos[k], soa[k]) << "instance " << i << " coord " << k;
    }
    EXPECT_EQ(buffer.probs[static_cast<size_t>(i)], dataset.instance(i).prob);
    EXPECT_EQ(buffer.objects[static_cast<size_t>(i)],
              dataset.instance(i).object_id);
  }
}

TEST(ScoreMapperSoA, GatherMatchesDirectMapping) {
  const UncertainDataset dataset = RandomDataset(15, 2, 3, 0.0, 107);
  const PreferenceRegion region = testing_util::WrRegion(3, 1);
  const ScoreMapper mapper(region);
  const DatasetView full(dataset);
  auto subset = DatasetView::Create(dataset, ViewSpec::Subset({2, 6, 11}));
  ASSERT_TRUE(subset.ok());
  const ScoreBuffer full_buffer = mapper.MapView(full);
  const ScoreBuffer gathered =
      ScoreSpan::Of(full_buffer).Gather(full, *subset);
  const ScoreBuffer direct = mapper.MapView(*subset);
  ASSERT_EQ(gathered.size(), direct.size());
  ASSERT_EQ(gathered.dim, direct.dim);
  ASSERT_EQ(gathered.coords.size(), direct.coords.size());
  for (size_t i = 0; i < direct.coords.size(); ++i) {
    EXPECT_EQ(gathered.coords[i], direct.coords[i]) << i;  // bit-exact
  }
  ASSERT_EQ(gathered.probs.size(), direct.probs.size());
  for (size_t i = 0; i < direct.probs.size(); ++i) {
    EXPECT_EQ(gathered.probs[i], direct.probs[i]) << i;
  }
  ASSERT_EQ(gathered.objects.size(), direct.objects.size());
  for (size_t i = 0; i < direct.objects.size(); ++i) {
    EXPECT_EQ(gathered.objects[i], direct.objects[i]) << i;
  }
}

// ------------------------------------------------- zero-copy span sharing

TEST(ZeroCopyDataPlane, PrefixChildSharesTheParentsScoreStorage) {
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(20, 3, 3, 0.0, 108));
  const PreferenceRegion region = testing_util::WrRegion(3, 2);
  auto parent =
      std::make_shared<ExecutionContext>(DatasetView(base), region);
  auto prefix = DatasetView::Create(base, ViewSpec::Prefix(9)).value();
  auto child = ExecutionContext::Derive(parent, prefix);

  const ScoreSpan child_span = child->scores();
  const ScoreSpan parent_span = parent->scores();
  // The child's span aliases the parent's buffer — no copy was made.
  EXPECT_EQ(child_span.coords, parent_span.coords);
  EXPECT_EQ(child_span.probs, parent_span.probs);
  EXPECT_EQ(child_span.objects, parent_span.objects);
  EXPECT_EQ(child_span.n, prefix.num_instances());
  EXPECT_LT(child_span.n, parent_span.n);

  const auto stats = child->index_build_stats();
  EXPECT_EQ(stats.score_maps, 0);
  EXPECT_EQ(stats.score_reuses, 1);

  // Index sharing: the child's kd-tree is literally the parent's.
  EXPECT_EQ(&child->instance_kdtree(), &parent->instance_kdtree());
  EXPECT_EQ(child->instance_rtree(16).get(), parent->instance_rtree(16).get());
  EXPECT_EQ(child->index_build_stats().kdtree_builds, 0);
  EXPECT_EQ(parent->index_build_stats().kdtree_builds, 1);
}

TEST(ZeroCopyDataPlane, DeriveRejectsForeignBasesAndOversizedViews) {
  auto base = std::make_shared<const UncertainDataset>(
      RandomDataset(10, 2, 2, 0.0, 109));
  const PreferenceRegion region = testing_util::WrRegion(2, 1);
  auto parent_prefix = std::make_shared<ExecutionContext>(
      DatasetView::Create(base, ViewSpec::Prefix(4)).value(), region);
  auto longer = DatasetView::Create(base, ViewSpec::Prefix(7)).value();
  EXPECT_DEATH(ExecutionContext::Derive(parent_prefix, longer), "prefix");
}

}  // namespace
}  // namespace arsp
