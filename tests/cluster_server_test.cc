// Copyright 2026 The ARSP Authors.
//
// The cluster stack over real sockets: an ArspServer serving a Coordinator
// whose shards are RemoteShards dialing two backend arspd processes' worth
// of ArspServers — the exact `arspd --coordinator` topology, in-process.
// Covers: bit-identical answers through two wire hops, the typed
// RETRY_LATER overload reply (client surfaces kUnavailable with the retry
// hint), admission applying only to QUERY, cross-process trace stitching
// (want_trace through the coordinator returns a span tree holding every
// shard's solve subtree), and the bounded-shutdown-latency regression for
// the nonblocking accept loop.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/admission.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/remote_shard.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/trace.h"

namespace arsp {
namespace {

using cluster::AdmissionController;
using cluster::AdmissionOptions;
using cluster::Coordinator;
using cluster::CoordinatorOptions;
using cluster::RemoteShard;

constexpr char kSpec[] = "iip:n=50,seed=9";
constexpr char kWr[] = "wr:0.5,2.0";

std::unique_ptr<net::ArspServer> StartServer(net::ServerOptions options) {
  options.port = 0;
  auto server = std::make_unique<net::ArspServer>(std::move(options));
  const Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  EXPECT_GT(server->port(), 0);
  return server;
}

net::ArspClient Connect(const net::ArspServer& server) {
  auto client = net::ArspClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

void LoadIip(net::ArspClient& client, const std::string& name) {
  net::LoadDatasetRequest load;
  load.name = name;
  load.source = net::LoadSource::kGenerator;
  load.payload = kSpec;
  auto response = client.LoadDataset(load);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
}

net::QueryRequestWire WireQuery(const std::string& dataset,
                                net::WireDerivedKind kind =
                                    net::WireDerivedKind::kNone) {
  net::QueryRequestWire request;
  request.dataset = dataset;
  request.constraint_spec = kWr;
  request.solver = "kdtt+";
  request.derived_kind = kind;
  return request;
}

TEST(ClusterServer, CoordinatorDaemonAnswersBitIdenticallyToASingleDaemon) {
  // Two backend daemons (the shards), dialed via RemoteShard.
  auto shard_a = StartServer({});
  auto shard_b = StartServer({});
  std::vector<std::shared_ptr<net::ServiceBackend>> shards = {
      std::make_shared<RemoteShard>("127.0.0.1", shard_a->port()),
      std::make_shared<RemoteShard>("127.0.0.1", shard_b->port()),
  };
  net::ServerOptions coordinator_options;
  coordinator_options.backend = std::make_shared<Coordinator>(
      shards, std::vector<std::string>{"a", "b"}, CoordinatorOptions{});
  auto coordinator = StartServer(std::move(coordinator_options));

  // The unsharded reference daemon.
  auto single = StartServer({});
  net::ArspClient single_client = Connect(*single);
  LoadIip(single_client, "iip");

  net::ArspClient client = Connect(*coordinator);
  LoadIip(client, "iip");

  // Full answer: the assembled instance vector is bit-identical.
  net::QueryRequestWire full = WireQuery("iip");
  full.include_instances = true;
  auto merged = client.Query(full);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto expected = single_client.Query(full);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(merged->complete);
  EXPECT_EQ(merged->instance_probs, expected->instance_probs);
  EXPECT_EQ(merged->result_size, expected->result_size);

  // Ranked kinds: ids, names, probabilities bit-exact through both hops.
  for (const net::WireDerivedKind kind :
       {net::WireDerivedKind::kTopKObjects,
        net::WireDerivedKind::kObjectsAboveThreshold,
        net::WireDerivedKind::kCountControlled}) {
    net::QueryRequestWire request = WireQuery("iip", kind);
    request.k = 5;
    request.threshold = 0.5;
    request.max_objects = 5;
    auto got = client.Query(request);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = single_client.Query(request);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->ranked.size(), want->ranked.size());
    for (size_t i = 0; i < got->ranked.size(); ++i) {
      EXPECT_EQ(got->ranked[i].object_id, want->ranked[i].object_id);
      EXPECT_EQ(got->ranked[i].name, want->ranked[i].name);
      EXPECT_EQ(got->ranked[i].prob, want->ranked[i].prob);
    }
    EXPECT_EQ(got->count_threshold, want->count_threshold);
  }

  // Both shards actually hold the dataset (replication 0 = everywhere) —
  // scatter is real, not a lucky single-holder forward.
  net::ArspClient direct_a = Connect(*shard_a);
  auto stats_a = direct_a.Stats("iip");
  ASSERT_TRUE(stats_a.ok()) << stats_a.status().ToString();
  net::ArspClient direct_b = Connect(*shard_b);
  auto stats_b = direct_b.Stats("iip");
  ASSERT_TRUE(stats_b.ok()) << stats_b.status().ToString();

  for (auto* server : {coordinator.get(), single.get(), shard_a.get(),
                       shard_b.get()}) {
    server->Shutdown();
    server->Wait();
  }
}

// Depth-first search for spans named `name`; appends matches to `out`.
void FindSpans(const obs::Span& span, const std::string& name,
               std::vector<const obs::Span*>* out) {
  if (span.name == name) out->push_back(&span);
  for (const obs::Span& child : span.children) FindSpans(child, name, out);
}

bool HasAnnotation(const obs::Span& span, const std::string& key,
                   const std::string& value) {
  for (const auto& [k, v] : span.annotations) {
    if (k == key && v == value) return true;
  }
  return false;
}

TEST(ClusterServer, CoordinatorStitchesShardTracesIntoOneTree) {
  auto shard_a = StartServer({});
  auto shard_b = StartServer({});
  std::vector<std::shared_ptr<net::ServiceBackend>> shards = {
      std::make_shared<RemoteShard>("127.0.0.1", shard_a->port()),
      std::make_shared<RemoteShard>("127.0.0.1", shard_b->port()),
  };
  net::ServerOptions coordinator_options;
  coordinator_options.backend = std::make_shared<Coordinator>(
      shards, std::vector<std::string>{"a", "b"}, CoordinatorOptions{});
  auto coordinator = StartServer(std::move(coordinator_options));

  net::ArspClient client = Connect(*coordinator);
  LoadIip(client, "iip");

  // An untraced query stays untraced: no id, no spans leak back.
  auto untraced = client.Query(WireQuery("iip"));
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
  EXPECT_EQ(untraced->trace_id, 0u);
  EXPECT_TRUE(untraced->trace_spans.empty());

  // A traced scatter query returns the coordinator's tree with one adopted
  // engine_query subtree per shard, each labeled with its shard index. A
  // fresh constraint spec keeps the shard result caches cold so every shard
  // subtree records a real solve span, not just the cache probe.
  net::QueryRequestWire traced = WireQuery("iip");
  traced.constraint_spec = "wr:0.4,2.5";
  traced.want_trace = true;
  auto response = client.Query(traced);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->trace_id, 0u);
  std::vector<obs::Span> spans;
  ASSERT_TRUE(obs::DeserializeSpans(response->trace_spans, &spans));
  ASSERT_EQ(spans.size(), 1u);
  const obs::Span& root = spans[0];
  EXPECT_EQ(root.name, "coordinator_query");

  std::vector<const obs::Span*> scatter;
  FindSpans(root, "scatter", &scatter);
  ASSERT_EQ(scatter.size(), 1u);

  std::vector<const obs::Span*> shard_queries;
  FindSpans(root, "engine_query", &shard_queries);
  ASSERT_EQ(shard_queries.size(), 2u);
  EXPECT_TRUE(HasAnnotation(*shard_queries[0], "shard", "0") ||
              HasAnnotation(*shard_queries[1], "shard", "0"));
  EXPECT_TRUE(HasAnnotation(*shard_queries[0], "shard", "1") ||
              HasAnnotation(*shard_queries[1], "shard", "1"));
  // Each shard subtree carries its daemon's solve span — the cross-process
  // timeline the --trace flag renders.
  for (const obs::Span* shard_query : shard_queries) {
    std::vector<const obs::Span*> solves;
    FindSpans(*shard_query, "solve", &solves);
    EXPECT_EQ(solves.size(), 1u);
    EXPECT_GE(shard_query->end_ns, shard_query->start_ns);
  }

  // The shards each retain their traced query for the TRACE verb, and the
  // coordinator's trace id propagated into both shard-side traces.
  for (auto* shard : {shard_a.get(), shard_b.get()}) {
    net::ArspClient direct = Connect(*shard);
    auto retained = direct.Trace();
    ASSERT_TRUE(retained.ok()) << retained.status().ToString();
    EXPECT_EQ(retained->trace_id, response->trace_id);
    std::vector<obs::Span> shard_spans;
    EXPECT_TRUE(obs::DeserializeSpans(retained->spans, &shard_spans));
  }

  // The rendered stitched tree is printable end to end.
  const std::string text = obs::RenderSpanTree(root, response->trace_id);
  EXPECT_NE(text.find("scatter"), std::string::npos);
  EXPECT_NE(text.find("shard=1"), std::string::npos);

  for (auto* server :
       {coordinator.get(), shard_a.get(), shard_b.get()}) {
    server->Shutdown();
    server->Wait();
  }
}

TEST(ClusterServer, OverloadRepliesTypedRetryLater) {
  // One query's worth of budget: the second QUERY on the same connection is
  // denied with the typed RETRY_LATER reply, which the client surfaces as
  // kUnavailable carrying the backoff hint — NOT a generic error, NOT a
  // closed connection.
  AdmissionOptions admission;
  admission.client_qps = 0.001;  // ~17 minutes per token: no refill in-test
  admission.client_burst = 1.0;
  net::ServerOptions options;
  options.query_gate = std::make_shared<AdmissionController>(admission);
  auto server = StartServer(std::move(options));

  net::ArspClient client = Connect(*server);
  LoadIip(client, "iip");  // LOAD is not admission-gated
  ASSERT_TRUE(client.Query(WireQuery("iip")).ok());  // spends the burst

  auto denied = client.Query(WireQuery("iip"));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(denied.status().message().find("retry after"),
            std::string::npos)
      << denied.status().ToString();

  // The connection survives a denial; non-QUERY traffic is never gated.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Stats().ok());

  // A second connection is a distinct admission client with its own burst.
  net::ArspClient other = Connect(*server);
  EXPECT_TRUE(other.Query(WireQuery("iip")).ok());

  server->Shutdown();
  server->Wait();
}

TEST(ClusterServer, DeniedQueriesDoNotLeakPendingBudget) {
  // A rate denial must not consume a pending slot (Release is only paired
  // with successful Admit): after many denials the pending gauge is zero
  // and admitted counts only the successes.
  AdmissionOptions admission;
  admission.client_qps = 0.001;
  admission.client_burst = 1.0;
  admission.max_pending = 4;
  auto gate = std::make_shared<AdmissionController>(admission);
  net::ServerOptions options;
  options.query_gate = gate;
  auto server = StartServer(std::move(options));

  net::ArspClient client = Connect(*server);
  LoadIip(client, "iip");
  ASSERT_TRUE(client.Query(WireQuery("iip")).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client.Query(WireQuery("iip")).status().code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(gate->pending(), 0);
  EXPECT_EQ(gate->admitted(), 1);
  EXPECT_EQ(gate->denied(), 5);

  server->Shutdown();
  server->Wait();
}

TEST(ClusterServer, ShutdownLatencyIsBoundedByThePollTick) {
  // The nonblocking-accept regression: Shutdown() + Wait() of an idle
  // server must complete within a few poll ticks (100ms each), never hang
  // waiting for a next connection. Generous bound for loaded CI machines.
  auto server = StartServer({});
  // An accepted-and-closed connection exercises the accept path first.
  { net::ArspClient client = Connect(*server); }

  const auto begin = std::chrono::steady_clock::now();
  server->Shutdown();
  server->Wait();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_LT(elapsed_ms, 2000.0);
}

}  // namespace
}  // namespace arsp
