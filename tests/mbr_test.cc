// Copyright 2026 The ARSP Authors.

#include "src/geometry/mbr.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(MbrTest, EmptyBoxBehaviour) {
  Mbr box = Mbr::Empty(2);
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.Volume(), 0.0);
  box.Extend(Point{1.0, 2.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.min_corner(), (Point{1.0, 2.0}));
  EXPECT_EQ(box.max_corner(), (Point{1.0, 2.0}));
}

TEST(MbrTest, ExtendAndContains) {
  Mbr box = Mbr::Empty(2);
  box.Extend(Point{0.0, 0.0});
  box.Extend(Point{2.0, 1.0});
  EXPECT_TRUE(box.Contains(Point{1.0, 0.5}));
  EXPECT_TRUE(box.Contains(Point{2.0, 1.0}));  // inclusive bounds
  EXPECT_FALSE(box.Contains(Point{2.0001, 1.0}));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 3.0);
}

TEST(MbrTest, OfPointsMatchesManualExtend) {
  const std::vector<Point> pts = {{1.0, 5.0}, {3.0, 2.0}, {2.0, 7.0}};
  const Mbr box = Mbr::OfPoints(pts);
  EXPECT_EQ(box.min_corner(), (Point{1.0, 2.0}));
  EXPECT_EQ(box.max_corner(), (Point{3.0, 7.0}));
}

TEST(MbrTest, IntersectionSemantics) {
  const Mbr a(Point{0.0, 0.0}, Point{2.0, 2.0});
  const Mbr b(Point{2.0, 2.0}, Point{3.0, 3.0});  // touching corner
  const Mbr c(Point{2.1, 0.0}, Point{3.0, 1.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.0);
}

TEST(MbrTest, OverlapVolume) {
  const Mbr a(Point{0.0, 0.0}, Point{2.0, 2.0});
  const Mbr b(Point{1.0, 1.0}, Point{3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapVolume(a), 1.0);
}

TEST(MbrTest, Enlargement) {
  const Mbr a(Point{0.0, 0.0}, Point{1.0, 1.0});
  const Mbr b(Point{2.0, 0.0}, Point{3.0, 1.0});
  // Merged box is [0,3]x[0,1] with volume 3; enlargement = 3 - 1 = 2.
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 2.0);
}

TEST(MbrTest, ExtendByBox) {
  Mbr a(Point{0.0, 0.0}, Point{1.0, 1.0});
  a.Extend(Mbr(Point{-1.0, 0.5}, Point{0.5, 2.0}));
  EXPECT_EQ(a.min_corner(), (Point{-1.0, 0.0}));
  EXPECT_EQ(a.max_corner(), (Point{1.0, 2.0}));
}

}  // namespace
}  // namespace arsp
