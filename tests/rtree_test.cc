// Copyright 2026 The ARSP Authors.

#include "src/index/rtree.h"

#include <functional>
#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace arsp {
namespace {

std::vector<RTree::LeafEntry> RandomEntries(int n, int dim, Rng& rng) {
  std::vector<RTree::LeafEntry> entries;
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
    entries.push_back(RTree::LeafEntry{std::move(p), rng.Uniform(0.0, 1.0), i});
  }
  return entries;
}

double BruteSum(const std::vector<RTree::LeafEntry>& entries, const Mbr& box) {
  double sum = 0.0;
  for (const auto& e : entries) {
    if (box.Contains(e.point)) sum += e.weight;
  }
  return sum;
}

Mbr RandomBox(int dim, Rng& rng) {
  Point lo(dim), hi(dim);
  for (int k = 0; k < dim; ++k) {
    const double a = rng.Uniform01(), b = rng.Uniform01();
    lo[k] = std::min(a, b);
    hi[k] = std::max(a, b);
  }
  return Mbr(lo, hi);
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree(2);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root_id(), -1);
  EXPECT_EQ(tree.WindowSum(Mbr(Point{0.0, 0.0}, Point{1.0, 1.0})), 0.0);
}

TEST(RTreeTest, BulkLoadWindowSumMatchesBruteForce) {
  Rng rng(1);
  const auto entries = RandomEntries(1000, 3, rng);
  const RTree tree = RTree::BulkLoad(3, entries);
  EXPECT_EQ(tree.size(), 1000);
  for (int trial = 0; trial < 60; ++trial) {
    const Mbr box = RandomBox(3, rng);
    EXPECT_NEAR(tree.WindowSum(box), BruteSum(entries, box), 1e-9);
  }
}

TEST(RTreeTest, IncrementalInsertWindowSumMatchesBruteForce) {
  Rng rng(2);
  const auto entries = RandomEntries(600, 2, rng);
  RTree tree(2, 8);
  for (const auto& e : entries) tree.Insert(e.point, e.weight, e.id);
  EXPECT_EQ(tree.size(), 600);
  for (int trial = 0; trial < 60; ++trial) {
    const Mbr box = RandomBox(2, rng);
    EXPECT_NEAR(tree.WindowSum(box), BruteSum(entries, box), 1e-9);
  }
}

TEST(RTreeTest, MixedBulkThenInsert) {
  Rng rng(3);
  auto entries = RandomEntries(200, 2, rng);
  RTree tree = RTree::BulkLoad(2, entries, 8);
  auto more = RandomEntries(200, 2, rng);
  for (auto& e : more) {
    e.id += 200;
    tree.Insert(e.point, e.weight, e.id);
    entries.push_back(e);
  }
  for (int trial = 0; trial < 40; ++trial) {
    const Mbr box = RandomBox(2, rng);
    EXPECT_NEAR(tree.WindowSum(box), BruteSum(entries, box), 1e-9);
  }
}

TEST(RTreeTest, NodeInvariants) {
  // Every child MBR is inside its parent's; every leaf point is inside its
  // leaf's MBR; weight sums aggregate exactly.
  Rng rng(4);
  const auto entries = RandomEntries(500, 3, rng);
  RTree tree(3, 8);
  for (const auto& e : entries) tree.Insert(e.point, e.weight, e.id);

  std::function<double(int)> check = [&](int id) -> double {
    double sum = 0.0;
    const Mbr box = tree.node_mbr(id);
    if (tree.node_is_leaf(id)) {
      for (int k = 0; k < tree.node_count(id); ++k) {
        const int e = tree.node_kid(id, k);
        EXPECT_TRUE(box.ContainsRow(tree.entry_coords(e)));
        sum += tree.entry_weight(e);
      }
    } else {
      for (int k = 0; k < tree.node_count(id); ++k) {
        const int child = tree.node_kid(id, k);
        const Mbr child_box = tree.node_mbr(child);
        for (int d = 0; d < 3; ++d) {
          EXPECT_GE(child_box.min_corner()[d], box.min_corner()[d]);
          EXPECT_LE(child_box.max_corner()[d], box.max_corner()[d]);
        }
        sum += check(child);
      }
    }
    EXPECT_NEAR(tree.node_weight_sum(id), sum, 1e-9);
    return sum;
  };
  check(tree.root_id());
}

TEST(RTreeTest, CollectInBox) {
  Rng rng(5);
  const auto entries = RandomEntries(300, 2, rng);
  const RTree tree = RTree::BulkLoad(2, entries);
  const Mbr box(Point{0.2, 0.2}, Point{0.6, 0.6});
  std::vector<int> ids;
  tree.CollectInBox(box, &ids);
  std::vector<int> expected;
  for (const auto& e : entries) {
    if (box.Contains(e.point)) expected.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(ids, expected);
}

TEST(RTreeTest, DuplicatePointsAggregate) {
  RTree tree(2, 4);
  for (int i = 0; i < 40; ++i) tree.Insert(Point{0.3, 0.3}, 0.25, i);
  EXPECT_NEAR(tree.WindowSum(Mbr(Point{0.3, 0.3}, Point{0.3, 0.3})), 10.0,
              1e-9);
  EXPECT_NEAR(tree.WindowSum(Mbr(Point{0.0, 0.0}, Point{0.2, 0.2})), 0.0,
              1e-9);
}

TEST(RTreeTest, BulkLoadHandlesTinyInputs) {
  for (int n = 1; n <= 5; ++n) {
    Rng rng(static_cast<uint64_t>(n));
    const auto entries = RandomEntries(n, 2, rng);
    const RTree tree = RTree::BulkLoad(2, entries);
    EXPECT_EQ(tree.size(), n);
    const Mbr root_box = tree.node_mbr(tree.root_id());
    EXPECT_NEAR(tree.WindowSum(root_box), BruteSum(entries, root_box), 1e-9);
  }
}

}  // namespace
}  // namespace arsp
