// Copyright 2026 The ARSP Authors.

#include "src/prefs/preference_region.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/prefs/constraint_generators.h"

namespace arsp {
namespace {

bool HasVertexNear(const std::vector<Point>& vertices, const Point& target,
                   double tol = 1e-9) {
  return std::any_of(vertices.begin(), vertices.end(), [&](const Point& v) {
    for (int i = 0; i < v.dim(); ++i) {
      if (std::abs(v[i] - target[i]) > tol) return false;
    }
    return true;
  });
}

TEST(PreferenceRegionTest, FullSimplexVerticesAreBasis) {
  const PreferenceRegion region = PreferenceRegion::FullSimplex(3);
  EXPECT_EQ(region.dim(), 3);
  EXPECT_EQ(region.num_vertices(), 3);
  EXPECT_TRUE(HasVertexNear(region.vertices(), Point{1.0, 0.0, 0.0}));
  EXPECT_TRUE(HasVertexNear(region.vertices(), Point{0.0, 1.0, 0.0}));
  EXPECT_TRUE(HasVertexNear(region.vertices(), Point{0.0, 0.0, 1.0}));
}

TEST(PreferenceRegionTest, UnconstrainedEnumerationRecoversSimplex) {
  const auto region =
      PreferenceRegion::FromLinearConstraints(LinearConstraints(3));
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->num_vertices(), 3);
  EXPECT_TRUE(HasVertexNear(region->vertices(), Point{1.0, 0.0, 0.0}));
}

TEST(PreferenceRegionTest, WeakRankingVertices) {
  // WR with c = d-1 = 2: ω1 >= ω2 >= ω3. The region's vertices are the
  // "averaging" weights (1,0,0), (1/2,1/2,0), (1/3,1/3,1/3) — exactly the
  // set V in the paper's NBA effectiveness study (§V-B).
  const auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(3, 2));
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->num_vertices(), 3);
  EXPECT_TRUE(HasVertexNear(region->vertices(), Point{1.0, 0.0, 0.0}));
  EXPECT_TRUE(HasVertexNear(region->vertices(), Point{0.5, 0.5, 0.0}));
  EXPECT_TRUE(
      HasVertexNear(region->vertices(), Point{1.0 / 3, 1.0 / 3, 1.0 / 3}));
}

TEST(PreferenceRegionTest, WeakRankingAlwaysHasDVertices) {
  // The paper notes WR regions always have d vertices, for any c <= d-1.
  for (int d = 2; d <= 6; ++d) {
    for (int c = 1; c <= d - 1; ++c) {
      const auto region = PreferenceRegion::FromLinearConstraints(
          MakeWeakRankingConstraints(d, c));
      ASSERT_TRUE(region.ok()) << "d=" << d << " c=" << c;
      EXPECT_EQ(region->num_vertices(), d) << "d=" << d << " c=" << c;
    }
  }
}

TEST(PreferenceRegionTest, EmptyRegionIsRejected) {
  LinearConstraints lc(2);
  lc.Add({1.0, 0.0}, -0.1);  // ω1 <= -0.1: impossible on the simplex
  const auto region = PreferenceRegion::FromLinearConstraints(lc);
  EXPECT_FALSE(region.ok());
  EXPECT_EQ(region.status().code(), StatusCode::kInvalidArgument);
}

TEST(PreferenceRegionTest, SingletonRegion) {
  LinearConstraints lc(2);
  lc.Add({1.0, -1.0}, 0.0);   // ω1 <= ω2
  lc.Add({-1.0, 1.0}, 0.0);   // ω2 <= ω1
  const auto region = PreferenceRegion::FromLinearConstraints(lc);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->num_vertices(), 1);
  EXPECT_TRUE(HasVertexNear(region->vertices(), Point{0.5, 0.5}));
}

TEST(PreferenceRegionTest, FromWeightRatiosMatchesLinearEnumeration) {
  const auto wr =
      WeightRatioConstraints::Create({{0.5, 2.0}, {0.25, 4.0}}).value();
  const PreferenceRegion direct = PreferenceRegion::FromWeightRatios(wr);
  const auto enumerated =
      PreferenceRegion::FromLinearConstraints(wr.ToLinearConstraints());
  ASSERT_TRUE(enumerated.ok());
  ASSERT_EQ(direct.num_vertices(), enumerated->num_vertices());
  for (const Point& v : direct.vertices()) {
    EXPECT_TRUE(HasVertexNear(enumerated->vertices(), v, 1e-8))
        << "missing " << v.ToString();
  }
}

TEST(PreferenceRegionTest, ContainsChecksSimplexAndConstraints) {
  const auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(3, 2));
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->Contains(Point{0.5, 0.3, 0.2}));
  EXPECT_FALSE(region->Contains(Point{0.2, 0.3, 0.5}));  // violates ranking
  EXPECT_FALSE(region->Contains(Point{0.5, 0.5, 0.5}));  // off simplex
}

TEST(PreferenceRegionTest, CentroidIsInsideForConvexRegion) {
  const auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(4, 3));
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->Contains(region->Centroid(), 1e-6));
}

TEST(PreferenceRegionTest, InteractiveRegionsContainHiddenWeight) {
  // IM regions must be non-empty (they contain ω* by construction) and every
  // enumerated vertex must satisfy the constraints.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const LinearConstraints lc = MakeInteractiveConstraints(4, 5, rng);
    const auto region = PreferenceRegion::FromLinearConstraints(lc);
    ASSERT_TRUE(region.ok()) << "seed=" << seed;
    for (const Point& v : region->vertices()) {
      EXPECT_TRUE(lc.Satisfies(v, 1e-6)) << v.ToString();
    }
  }
}

TEST(PreferenceRegionTest, FromVerticesValidates) {
  EXPECT_FALSE(PreferenceRegion::FromVertices({}).ok());
  EXPECT_FALSE(
      PreferenceRegion::FromVertices({Point{0.5, 0.4}}).ok());  // sum != 1
  EXPECT_FALSE(
      PreferenceRegion::FromVertices({Point{1.5, -0.5}}).ok());  // negative
  const auto ok = PreferenceRegion::FromVertices(
      {Point{0.5, 0.5}, Point{1.0, 0.0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_vertices(), 2);
}

}  // namespace
}  // namespace arsp
