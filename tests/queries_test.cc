// Copyright 2026 The ARSP Authors.

#include "src/core/queries.h"

#include <gtest/gtest.h>

#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::WrRegion;

UncertainDataset FourObjects() {
  UncertainDatasetBuilder builder(1);
  for (int i = 0; i < 4; ++i) builder.AddSingleton(Point{1.0 * i}, 1.0);
  return std::move(builder.Build()).value();
}

ArspResult FixedResult() {
  ArspResult result;
  result.instance_probs = {0.9, 0.4, 0.4, 0.05};
  return result;
}

TEST(QueriesTest, ObjectsAboveThreshold) {
  const UncertainDataset dataset = FourObjects();
  const ArspResult result = FixedResult();
  const auto above = ObjectsAboveThreshold(result, dataset, 0.4);
  ASSERT_EQ(above.size(), 3u);
  EXPECT_EQ(above[0].first, 0);
  EXPECT_EQ(above[1].first, 1);  // tie with 2, lower id first
  EXPECT_EQ(above[2].first, 2);
  EXPECT_TRUE(ObjectsAboveThreshold(result, dataset, 0.95).empty());
}

TEST(QueriesTest, InstancesAboveThresholdAndTopK) {
  const ArspResult result = FixedResult();
  const auto above = InstancesAboveThreshold(result, 0.4);
  ASSERT_EQ(above.size(), 3u);
  EXPECT_EQ(above.front().first, 0);
  const auto top2 = TopKInstances(result, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, 0);
  EXPECT_EQ(top2[1].first, 1);
  EXPECT_EQ(TopKInstances(result, 0).size(), 0u);
}

TEST(QueriesTest, ThresholdForObjectCount) {
  const UncertainDataset dataset = FourObjects();
  const ArspResult result = FixedResult();
  // Asking for 2 objects: the 2nd ranked object's probability is 0.4, and
  // querying with that threshold returns at least those objects.
  EXPECT_DOUBLE_EQ(ThresholdForObjectCount(result, dataset, 1), 0.9);
  EXPECT_DOUBLE_EQ(ThresholdForObjectCount(result, dataset, 2), 0.4);
  EXPECT_DOUBLE_EQ(ThresholdForObjectCount(result, dataset, 4), 0.05);
}

TEST(QueriesTest, TopKInstancesEdgeCases) {
  const ArspResult result = FixedResult();
  // k <= 0: zero asks for nothing; negative means "all" (mirroring
  // TopKObjects' k = -1 convention).
  EXPECT_TRUE(TopKInstances(result, 0).empty());
  EXPECT_EQ(TopKInstances(result, -1).size(), 4u);
  // k > n: everything, never an out-of-range access.
  const auto all = TopKInstances(result, 100);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().first, 0);
  EXPECT_EQ(all.back().first, 3);
}

TEST(QueriesTest, ThresholdForObjectCountTiesAndLargeCounts) {
  const UncertainDataset dataset = FourObjects();
  ArspResult result;
  result.instance_probs = {0.7, 0.4, 0.4, 0.1};  // objects 1 and 2 tie
  // max_objects = 2 lands on the tied probability; querying at that
  // threshold returns all tied objects (3, not 2) — controllable size is a
  // lower bound under ties.
  const double tie = ThresholdForObjectCount(result, dataset, 2);
  EXPECT_DOUBLE_EQ(tie, 0.4);
  EXPECT_EQ(ObjectsAboveThreshold(result, dataset, tie).size(), 3u);
  // max_objects >= object count: the weakest object's probability.
  EXPECT_DOUBLE_EQ(ThresholdForObjectCount(result, dataset, 4), 0.1);
  EXPECT_DOUBLE_EQ(ThresholdForObjectCount(result, dataset, 100), 0.1);
}

TEST(QueriesTest, EmptyResultInputs) {
  const ArspResult empty;  // no instances at all
  EXPECT_TRUE(TopKInstances(empty, 5).empty());
  EXPECT_TRUE(InstancesAboveThreshold(empty, 0.0).empty());
  // An all-zero result: every derived query degrades gracefully.
  UncertainDatasetBuilder builder(1);
  builder.AddSingleton(Point{1.0}, 1.0);
  const UncertainDataset one = std::move(builder.Build()).value();
  ArspResult zeros;
  zeros.instance_probs = {0.0};
  EXPECT_TRUE(ObjectsAboveThreshold(zeros, one, 0.5).empty());
  EXPECT_DOUBLE_EQ(ThresholdForObjectCount(zeros, one, 1), 0.0);
}

TEST(QueriesTest, ConsistentWithFullRanking) {
  const UncertainDataset dataset = RandomDataset(30, 4, 3, 0.2, 5);
  const PreferenceRegion region = WrRegion(3, 2);
  const ArspResult result = ComputeArspLoop(dataset, region);
  const auto ranked = TopKObjects(result, dataset, -1);
  // Thresholding at the k-th probability returns the top-k prefix (modulo
  // ties, which extend the result).
  const int k = 5;
  const double threshold = ThresholdForObjectCount(result, dataset, k);
  const auto above = ObjectsAboveThreshold(result, dataset, threshold);
  ASSERT_GE(above.size(), static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(above[static_cast<size_t>(i)].first,
              ranked[static_cast<size_t>(i)].first);
  }
}

}  // namespace
}  // namespace arsp
