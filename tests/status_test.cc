// Copyright 2026 The ARSP Authors.

#include "src/common/status.h"

#include <gtest/gtest.h>

namespace arsp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad d");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad d");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad d");
}

TEST(StatusTest, AllFactoriesSetCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

Status Passthrough(bool fail) {
  ARSP_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Passthrough(false).ok());
  EXPECT_EQ(Passthrough(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace arsp
