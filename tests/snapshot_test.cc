// Copyright 2026 The ARSP Authors.
//
// Snapshot format tests: a written-then-mmap-loaded dataset must be
// byte-identical to the in-memory original (columns, names, fingerprint),
// every registered solver must produce bit-identical probabilities over
// both — with and without goals, for both constraint families — and every
// class of malformed file (truncation, corruption, wrong version, foreign
// endianness) must be rejected with a clean error, never a crash.

#include "src/io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/queries.h"
#include "src/core/solver.h"
#include "src/index/kdtree.h"
#include "src/index/rtree.h"
#include "src/prefs/score_mapper.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using snapshot::LoadSnapshot;
using snapshot::SnapshotLoadOptions;
using snapshot::SnapshotWriteOptions;
using snapshot::WriteSnapshot;
using testing_util::RandomDataset;
using testing_util::RandomWr;
using testing_util::WrRegion;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void ExpectColumnsEqual(const Column<T>& got, const Column<T>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.bytes()), 0);
}

TEST(SnapshotRoundTrip, ColumnsNamesAndBoundsAreBitIdentical) {
  const UncertainDataset dataset = RandomDataset(20, 4, 3, 0.3, 501);
  std::vector<std::string> names;
  for (int j = 0; j < dataset.num_objects(); ++j) {
    names.push_back("obj-" + std::to_string(j));
  }
  const std::string path = TempPath("roundtrip.arsp");
  SnapshotWriteOptions options;
  options.object_names = names;
  ASSERT_TRUE(WriteSnapshot(dataset, path, options).ok());

  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const UncertainDataset& snap = *loaded->dataset;

  EXPECT_EQ(snap.dim(), dataset.dim());
  EXPECT_EQ(snap.num_objects(), dataset.num_objects());
  EXPECT_EQ(snap.num_instances(), dataset.num_instances());
  ExpectColumnsEqual(snap.coords_column(), dataset.coords_column());
  ExpectColumnsEqual(snap.probs_column(), dataset.probs_column());
  ExpectColumnsEqual(snap.instance_objects_column(),
                     dataset.instance_objects_column());
  ExpectColumnsEqual(snap.object_starts_column(),
                     dataset.object_starts_column());
  ExpectColumnsEqual(snap.object_probs_column(), dataset.object_probs_column());
  EXPECT_EQ(snap.bounds().min_corner(), dataset.bounds().min_corner());
  EXPECT_EQ(snap.bounds().max_corner(), dataset.bounds().max_corner());
  EXPECT_EQ(loaded->object_names, names);
  EXPECT_GT(loaded->bytes_mapped, 0u);

  // Zero-copy contract: every hot column is borrowed (pointing into the
  // mapping), and the prebuilt indexes arrived attached.
  EXPECT_TRUE(snap.coords_column().borrowed());
  EXPECT_TRUE(snap.probs_column().borrowed());
  ASSERT_NE(snap.attached_kdtree(), nullptr);
  ASSERT_NE(snap.attached_rtree(), nullptr);
  EXPECT_TRUE(snap.attached_kdtree()->nodes_column().borrowed());
  EXPECT_TRUE(snap.attached_rtree()->nodes_column().borrowed());
  EXPECT_EQ(snap.attached_kdtree()->size(), dataset.num_instances());
  EXPECT_EQ(snap.attached_rtree()->size(), dataset.num_instances());
  EXPECT_EQ(snap.attached_scores(), nullptr);  // none were written
}

TEST(SnapshotRoundTrip, AttachedIndexesMatchFreshBuildsBitExactly) {
  const UncertainDataset dataset = RandomDataset(25, 3, 2, 0.0, 502, true);
  const std::string path = TempPath("indexes.arsp");
  ASSERT_TRUE(WriteSnapshot(dataset, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());

  const DatasetView view(dataset);
  const KdTree fresh_kd = KdTree::FromView(view);
  const RTree fresh_rt = RTree::BulkLoadFromView(view);
  const KdTree& snap_kd = *loaded->dataset->attached_kdtree();
  const RTree& snap_rt = *loaded->dataset->attached_rtree();
  ExpectColumnsEqual(snap_kd.nodes_column(), fresh_kd.nodes_column());
  ExpectColumnsEqual(snap_kd.node_bounds_column(),
                     fresh_kd.node_bounds_column());
  ExpectColumnsEqual(snap_kd.item_coords_column(),
                     fresh_kd.item_coords_column());
  ExpectColumnsEqual(snap_kd.item_ids_column(), fresh_kd.item_ids_column());
  ExpectColumnsEqual(snap_rt.nodes_column(), fresh_rt.nodes_column());
  ExpectColumnsEqual(snap_rt.node_bounds_column(),
                     fresh_rt.node_bounds_column());
  ExpectColumnsEqual(snap_rt.node_kids_column(), fresh_rt.node_kids_column());
  ExpectColumnsEqual(snap_rt.entry_coords_column(),
                     fresh_rt.entry_coords_column());
  EXPECT_EQ(snap_rt.root_id(), fresh_rt.root_id());
}

// Every registered solver, both constraint families, full solves and goal
// solves: a snapshot-served dataset must be indistinguishable — bit for
// bit — from the in-memory build it was written from.
TEST(SnapshotEquivalence, EverySolverAndGoalIsBitIdentical) {
  const UncertainDataset dataset = RandomDataset(18, 3, 3, 0.25, 503);
  const PreferenceRegion region = WrRegion(3, 2);
  const WeightRatioConstraints wr = RandomWr(3, 77);

  const std::string path = TempPath("solvers.arsp");
  SnapshotWriteOptions options;
  options.scores_region = &region;  // ship pre-mapped scores too
  ASSERT_TRUE(WriteSnapshot(dataset, path, options).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  const auto snap = loaded->dataset;

  const std::vector<QueryGoal> goals = {
      QueryGoal{}, QueryGoal::TopK(3), QueryGoal::Threshold(0.25),
      QueryGoal::CountControlled(4)};

  for (const std::string& name : SolverRegistry::Names()) {
    auto solver = SolverRegistry::Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    for (int family = 0; family < 2; ++family) {
      for (const QueryGoal& goal : goals) {
        SCOPED_TRACE(name + (family == 0 ? "/region" : "/wr") + "/" +
                     goal.ToString());
        auto mem_context =
            family == 0
                ? std::make_unique<ExecutionContext>(dataset, region, goal)
                : std::make_unique<ExecutionContext>(dataset, wr, goal);
        auto snap_context =
            family == 0 ? std::make_unique<ExecutionContext>(DatasetView(snap),
                                                             region, goal)
                        : std::make_unique<ExecutionContext>(DatasetView(snap),
                                                             wr, goal);
        auto mem_result = (*solver)->Solve(*mem_context);
        auto snap_result = (*solver)->Solve(*snap_context);
        ASSERT_EQ(mem_result.ok(), snap_result.ok());
        if (!mem_result.ok()) continue;  // inapplicable either way
        if (mem_result->is_complete()) {
          ASSERT_EQ(mem_result->instance_probs.size(),
                    snap_result->instance_probs.size());
          for (size_t i = 0; i < mem_result->instance_probs.size(); ++i) {
            EXPECT_EQ(mem_result->instance_probs[i],
                      snap_result->instance_probs[i])
                << "instance " << i;
          }
        }
        const auto mem_ranked =
            AnswerGoal(*mem_result, mem_context->view(), goal);
        const auto snap_ranked =
            AnswerGoal(*snap_result, snap_context->view(), goal);
        ASSERT_EQ(mem_ranked.size(), snap_ranked.size());
        for (size_t i = 0; i < mem_ranked.size(); ++i) {
          EXPECT_EQ(mem_ranked[i].first, snap_ranked[i].first);
          EXPECT_EQ(mem_ranked[i].second, snap_ranked[i].second);
        }
      }
    }
  }
}

TEST(SnapshotEquivalence, AttachedArtifactsAreAdoptedNotRebuilt) {
  const UncertainDataset dataset = RandomDataset(15, 3, 3, 0.0, 504);
  const PreferenceRegion region = WrRegion(3, 2);
  const std::string path = TempPath("adopt.arsp");
  SnapshotWriteOptions options;
  options.scores_region = &region;
  options.rtree_fanout = 16;
  ASSERT_TRUE(WriteSnapshot(dataset, path, options).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());

  ExecutionContext context(DatasetView(loaded->dataset), region);
  context.instance_kdtree();
  context.instance_rtree(16);
  context.scores();
  const auto stats = context.index_build_stats();
  EXPECT_EQ(stats.snapshot_hits, 3);
  EXPECT_EQ(stats.kdtree_builds, 0);
  EXPECT_EQ(stats.rtree_builds, 0);
  EXPECT_EQ(stats.score_maps, 0);

  const ColumnBytes footprint = context.IndexMemoryFootprint();
  EXPECT_GT(footprint.mapped, 0u);  // artifacts live in the mapping
  EXPECT_EQ(footprint.resident, 0u);

  // A different region must NOT adopt the shipped scores (hash mismatch).
  const PreferenceRegion other = WrRegion(3, 1);
  ExecutionContext other_context(DatasetView(loaded->dataset), other);
  other_context.scores();
  EXPECT_EQ(other_context.index_build_stats().snapshot_hits, 0);
  EXPECT_EQ(other_context.index_build_stats().score_maps, 1);
}

TEST(SnapshotIdentity, FingerprintIsContentNotPath) {
  const UncertainDataset dataset = RandomDataset(10, 2, 2, 0.0, 505);
  const std::string a = TempPath("fp_a.arsp");
  const std::string b = TempPath("fp_b.arsp");
  ASSERT_TRUE(WriteSnapshot(dataset, a).ok());
  ASSERT_TRUE(WriteSnapshot(dataset, b).ok());
  auto la = LoadSnapshot(a);
  auto lb = LoadSnapshot(b);
  ASSERT_TRUE(la.ok() && lb.ok());
  EXPECT_EQ(la->fingerprint, lb->fingerprint);
  EXPECT_NE(la->fingerprint, 0u);

  const UncertainDataset other = RandomDataset(10, 2, 2, 0.0, 506);
  const std::string c = TempPath("fp_c.arsp");
  ASSERT_TRUE(WriteSnapshot(other, c).ok());
  auto lc = LoadSnapshot(c);
  ASSERT_TRUE(lc.ok());
  EXPECT_NE(la->fingerprint, lc->fingerprint);
}

// ------------------------------------------------------------- rejection

TEST(SnapshotRejection, TruncatedFilesAreInvalid) {
  const UncertainDataset dataset = RandomDataset(12, 3, 2, 0.0, 507);
  const std::string path = TempPath("trunc.arsp");
  ASSERT_TRUE(WriteSnapshot(dataset, path).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 256u);

  const std::string cut = TempPath("trunc_cut.arsp");
  for (const size_t keep :
       {size_t{1}, size_t{32}, size_t{63}, size_t{200}, bytes.size() / 2,
        bytes.size() - 1}) {
    WriteAll(cut, bytes.substr(0, keep));
    const auto loaded = LoadSnapshot(cut);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
  }
}

TEST(SnapshotRejection, WrongMagicVersionAndEndianness) {
  const UncertainDataset dataset = RandomDataset(8, 2, 2, 0.0, 508);
  const std::string path = TempPath("hdr.arsp");
  ASSERT_TRUE(WriteSnapshot(dataset, path).ok());
  const std::string bytes = ReadAll(path);
  const std::string bad = TempPath("hdr_bad.arsp");

  {
    std::string mutated = bytes;
    mutated[0] = 'X';  // magic
    WriteAll(bad, mutated);
    const auto loaded = LoadSnapshot(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  }
  {
    std::string mutated = bytes;
    mutated[8] = 99;  // version (little-endian low byte)
    WriteAll(bad, mutated);
    const auto loaded = LoadSnapshot(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  }
  {
    std::string mutated = bytes;
    std::swap(mutated[12], mutated[15]);  // endian marker byte order
    WriteAll(bad, mutated);
    const auto loaded = LoadSnapshot(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("byte order"),
              std::string::npos);
  }
}

TEST(SnapshotRejection, CorruptedSectionFailsItsChecksum) {
  const UncertainDataset dataset = RandomDataset(12, 3, 2, 0.0, 509);
  const std::string path = TempPath("corrupt.arsp");
  ASSERT_TRUE(WriteSnapshot(dataset, path).ok());
  std::string bytes = ReadAll(path);

  // Flip one bit deep inside the file (section payload, past header+table).
  bytes[bytes.size() - 16] = static_cast<char>(bytes[bytes.size() - 16] ^ 0x40);
  const std::string bad = TempPath("corrupt_bad.arsp");
  WriteAll(bad, bytes);

  const auto strict = LoadSnapshot(bad);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("checksum"), std::string::npos);

  // With verification off the structural checks still pass — this is the
  // documented trade: no sequential read, trust the bytes.
  SnapshotLoadOptions trusting;
  trusting.verify_checksums = false;
  EXPECT_TRUE(LoadSnapshot(bad, trusting).ok());
}

TEST(SnapshotRejection, TamperedSectionTableIsCaughtByTheHeaderHash) {
  const UncertainDataset dataset = RandomDataset(8, 2, 2, 0.0, 510);
  const std::string path = TempPath("table.arsp");
  ASSERT_TRUE(WriteSnapshot(dataset, path).ok());
  std::string bytes = ReadAll(path);
  // First table entry starts at offset 64; corrupt its length field.
  bytes[64 + 16] = static_cast<char>(bytes[64 + 16] ^ 0x01);
  const std::string bad = TempPath("table_bad.arsp");
  WriteAll(bad, bytes);
  // Even with checksum verification off, the table hash always runs.
  SnapshotLoadOptions trusting;
  trusting.verify_checksums = false;
  const auto loaded = LoadSnapshot(bad, trusting);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("header hash"), std::string::npos);
}

TEST(SnapshotRejection, NonexistentAndEmptyFiles) {
  EXPECT_FALSE(LoadSnapshot(TempPath("does_not_exist.arsp")).ok());
  const std::string empty = TempPath("empty.arsp");
  WriteAll(empty, "");
  EXPECT_FALSE(LoadSnapshot(empty).ok());
}

}  // namespace
}  // namespace arsp
