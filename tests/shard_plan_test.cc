// Copyright 2026 The ARSP Authors.
//
// ShardPlan placement: deterministic consistent-hash placement with the
// replication count honored, minimal dataset movement when the shard set
// grows (the property that justifies a ring over hash-mod-S), and
// EvenPartition producing exact disjoint covers.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/cluster/shard_plan.h"

namespace arsp {
namespace cluster {
namespace {

std::vector<std::string> ShardNames(int n) {
  std::vector<std::string> names;
  for (int s = 0; s < n; ++s) names.push_back("shard-" + std::to_string(s));
  return names;
}

TEST(ShardPlan, PlacementIsDeterministicAndHonorsReplication) {
  ShardPlanOptions options;
  options.replication = 2;
  const ShardPlan plan(ShardNames(5), options);
  const ShardPlan same(ShardNames(5), options);
  for (int d = 0; d < 50; ++d) {
    const std::string dataset = "data-" + std::to_string(d);
    const std::vector<int> holders = plan.HoldersFor(dataset);
    ASSERT_EQ(holders.size(), 2u) << dataset;
    // Distinct shards, in range.
    EXPECT_NE(holders[0], holders[1]);
    for (int h : holders) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, 5);
    }
    // Same plan inputs, same placement — the registry can be rebuilt.
    EXPECT_EQ(holders, same.HoldersFor(dataset)) << dataset;
  }
}

TEST(ShardPlan, ZeroReplicationMeansEveryShardHolds) {
  const ShardPlan plan(ShardNames(4), ShardPlanOptions{});  // replication 0
  const std::vector<int> holders = plan.HoldersFor("anything");
  EXPECT_EQ(std::set<int>(holders.begin(), holders.end()),
            (std::set<int>{0, 1, 2, 3}));
  // Replication above the shard count clamps.
  ShardPlanOptions over;
  over.replication = 99;
  EXPECT_EQ(ShardPlan(ShardNames(3), over).HoldersFor("x").size(), 3u);
}

TEST(ShardPlan, AddingAShardMovesFewDatasets) {
  // The consistent-hashing property: growing 8 → 9 shards should re-place
  // roughly 1/9 of the datasets, not reshuffle everything. Allow generous
  // slack — the point is "a small fraction", not the exact expectation.
  ShardPlanOptions options;
  options.replication = 1;
  const ShardPlan before(ShardNames(8), options);
  std::vector<std::string> grown = ShardNames(8);
  grown.push_back("shard-8");
  const ShardPlan after(grown, options);

  constexpr int kDatasets = 1000;
  int moved = 0;
  for (int d = 0; d < kDatasets; ++d) {
    const std::string dataset = "dataset-" + std::to_string(d);
    if (before.HoldersFor(dataset) != after.HoldersFor(dataset)) ++moved;
  }
  // Expectation is kDatasets/9 ≈ 111; hash-mod-S would move ~8/9 ≈ 889.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kDatasets / 3);
}

TEST(ShardPlan, SpreadIsRoughlyUniform) {
  ShardPlanOptions options;
  options.replication = 1;
  const ShardPlan plan(ShardNames(4), options);
  std::vector<int> load(4, 0);
  constexpr int kDatasets = 2000;
  for (int d = 0; d < kDatasets; ++d) {
    ++load[static_cast<size_t>(
        plan.HoldersFor("ds-" + std::to_string(d))[0])];
  }
  for (int s = 0; s < 4; ++s) {
    // Each shard within a factor ~2 of the fair share (500).
    EXPECT_GT(load[static_cast<size_t>(s)], kDatasets / 10) << "shard " << s;
    EXPECT_LT(load[static_cast<size_t>(s)], kDatasets / 2) << "shard " << s;
  }
}

TEST(ShardPlan, EvenPartitionCoversExactlyAndEvenly) {
  for (int m : {0, 1, 5, 7, 100}) {
    for (int parts : {1, 2, 3, 7}) {
      const auto scopes = ShardPlan::EvenPartition(m, parts);
      ASSERT_EQ(scopes.size(), static_cast<size_t>(parts));
      int expected_begin = 0;
      for (const auto& [begin, end] : scopes) {
        EXPECT_EQ(begin, expected_begin);  // contiguous, ascending, disjoint
        EXPECT_GE(end, begin);
        // Sizes differ by at most one.
        EXPECT_LE(end - begin, m / parts + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, m);  // exact cover
    }
  }
}

TEST(ShardPlan, HashIsStableAndAvalanchesTheTail) {
  // Pinned values (FNV-1a + fmix64 finalizer): the ring layout — and
  // therefore placement — must never drift silently across refactors; a
  // coordinator restart would strand datasets on the wrong shards.
  EXPECT_EQ(ShardPlan::Hash(""), 17280346270528514342ull);
  EXPECT_EQ(ShardPlan::Hash("a"), 9413272369427828315ull);
  // The tail-avalanche property the finalizer exists for: last-character
  // variants must land far apart (raw FNV-1a keeps them within ~2^44).
  const uint64_t a = ShardPlan::Hash("nba");
  const uint64_t b = ShardPlan::Hash("nbb");
  const uint64_t gap = a > b ? a - b : b - a;
  EXPECT_GT(gap, 1ull << 48);
}

}  // namespace
}  // namespace cluster
}  // namespace arsp
