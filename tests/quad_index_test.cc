// Copyright 2026 The ARSP Authors.

#include "src/eclipse/quad_index.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/eclipse/eclipse.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomWr;

std::vector<Point> RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
    points.push_back(std::move(p));
  }
  return points;
}

TEST(QuadIndexTest, MatchesBruteForceAcrossDimsAndRanges) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 4);
    const auto points = RandomPoints(500, dim, seed);
    const QuadEclipseIndex index(points);
    for (uint64_t q = 0; q < 4; ++q) {
      const WeightRatioConstraints wr = RandomWr(dim, seed * 10 + q);
      EXPECT_EQ(index.Query(wr), ComputeEclipseBrute(points, wr))
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(QuadIndexTest, OneIndexServesManyQueries) {
  const auto points = RandomPoints(2000, 3, 42);
  const QuadEclipseIndex index(points);
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0.84, 1.19}, {0.58, 1.73}, {0.36, 2.75}, {0.18, 5.67}}) {
    const auto wr =
        WeightRatioConstraints::Create({{lo, hi}, {lo, hi}}).value();
    EXPECT_EQ(index.Query(wr), ComputeEclipseDualS(points, wr))
        << lo << " " << hi;
  }
}

TEST(QuadIndexTest, QueriesOutsideIndexedBoxStayCorrect) {
  // The index covers [0.02, 10]; wider queries fall back to corner
  // resolution and must still be exact.
  const auto points = RandomPoints(300, 2, 7);
  const QuadEclipseIndex index(points);
  const auto wr = WeightRatioConstraints::Create({{0.001, 50.0}}).value();
  EXPECT_EQ(index.Query(wr), ComputeEclipseBrute(points, wr));
}

TEST(QuadIndexTest, DegeneratePointRange) {
  const auto points = RandomPoints(300, 3, 9);
  const QuadEclipseIndex index(points);
  const auto wr =
      WeightRatioConstraints::Create({{1.0, 1.0}, {1.0, 1.0}}).value();
  EXPECT_EQ(index.Query(wr), ComputeEclipseBrute(points, wr));
}

TEST(QuadIndexTest, DuplicatePoints) {
  std::vector<Point> points = RandomPoints(100, 2, 11);
  points.push_back(points.front());
  const QuadEclipseIndex index(points);
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  EXPECT_EQ(index.Query(wr), ComputeEclipseBrute(points, wr));
}

TEST(QuadIndexTest, StatsArePopulated) {
  const auto points = RandomPoints(3000, 4, 13);
  const QuadEclipseIndex index(points);
  EXPECT_GT(index.skyline_size(), 0);
  EXPECT_EQ(index.num_hyperplanes(),
            index.skyline_size() * (index.skyline_size() - 1) / 2);
  EXPECT_GT(index.num_nodes(), 1);
  EXPECT_GT(index.height(), 0);
}

TEST(QuadIndexTest, PlaneReplicationGrowsWithDimension) {
  // The paper's observation: in higher dimensions, a node's hyperplane set
  // shrinks only slightly relative to its parent, so each hyperplane is
  // replicated across many more cells per tree level. Compare per-level
  // replication (refs per plane per level of height) at equal budgets.
  QuadEclipseIndex::Options opts;
  opts.max_depth = 3;  // same depth for both dimensionalities
  const auto p2 = RandomPoints(4000, 2, 17);
  const auto p5 = RandomPoints(4000, 5, 17);
  const QuadEclipseIndex i2(p2, opts);
  const QuadEclipseIndex i5(p5, opts);
  const double refs_per_plane_2 =
      static_cast<double>(i2.total_plane_refs()) /
      std::max(1, i2.num_hyperplanes());
  const double refs_per_plane_5 =
      static_cast<double>(i5.total_plane_refs()) /
      std::max(1, i5.num_hyperplanes());
  EXPECT_GT(refs_per_plane_5, refs_per_plane_2);
}

TEST(QuadIndexTest, SinglePoint) {
  const std::vector<Point> points = {{0.3, 0.7}};
  const QuadEclipseIndex index(points);
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  EXPECT_EQ(index.Query(wr), (std::vector<int>{0}));
}

}  // namespace
}  // namespace arsp
