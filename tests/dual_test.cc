// Copyright 2026 The ARSP Authors.
//
// Tests for the half-space reporting reduction (DUAL): the Eq. (6)
// hyperplanes, region partitioning without double counting, and agreement
// with the Theorem-2 reference on random weight-ratio workloads.

#include <gtest/gtest.h>

#include "src/core/dual_algorithm.h"
#include "src/core/enum_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::Example1Dataset;
using testing_util::Example1Wr;
using testing_util::RandomDataset;
using testing_util::RandomWr;

TEST(DualTest, Example3Hyperplanes) {
  // Example 3: t2,3 = (9,12), R = [0.5, 2]. Region 0 (x < 9) hyperplane is
  // y = -0.5x + 16.5; region 1 (x >= 9) is y = -2x + 30.
  const WeightRatioConstraints wr = Example1Wr();
  const Point t{9.0, 12.0};
  const Hyperplane h0 = MakeRegionHyperplane(t, 0, wr);
  EXPECT_NEAR(h0.HeightAt(Point{0.0, 0.0}), 16.5, 1e-12);
  EXPECT_NEAR(h0.HeightAt(Point{9.0, 0.0}), 12.0, 1e-12);
  EXPECT_NEAR(h0.coef()[0], -0.5, 1e-12);
  const Hyperplane h1 = MakeRegionHyperplane(t, 1, wr);
  EXPECT_NEAR(h1.HeightAt(Point{0.0, 0.0}), 30.0, 1e-12);
  EXPECT_NEAR(h1.coef()[0], -2.0, 1e-12);
  // t3,1 = (6,5) and t3,2 = (7,6) lie below h0; t3,3 = (10,9) below h1.
  EXPECT_TRUE(h0.BelowOrOn(Point{6.0, 5.0}));
  EXPECT_TRUE(h0.BelowOrOn(Point{7.0, 6.0}));
  EXPECT_TRUE(h1.BelowOrOn(Point{10.0, 9.0}));
  // t1,2 = (14,14) is in region 1 but above h1 (height at 14: 2).
  EXPECT_FALSE(h1.BelowOrOn(Point{14.0, 14.0}));
}

TEST(DualTest, HyperplaneMembershipMatchesTheorem5) {
  // For any s in region k: s F-dominates t iff s lies below-or-on h_{t,k}.
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const int d = rng.UniformInt(2, 4);
    const WeightRatioConstraints wr = RandomWr(d, trial + 1);
    Point t(d), s(d);
    for (int k = 0; k < d; ++k) {
      t[k] = rng.Uniform01();
      s[k] = rng.Uniform01();
    }
    int code = 0;
    for (int i = 0; i < d - 1; ++i) {
      if (s[i] >= t[i]) code |= (1 << i);
    }
    const Hyperplane h = MakeRegionHyperplane(t, code, wr);
    EXPECT_EQ(h.BelowOrOn(s, 1e-12), FDominatesWeightRatio(s, t, wr))
        << "d=" << d;
  }
}

TEST(DualTest, MatchesEnumOnExample1) {
  const UncertainDataset dataset = Example1Dataset();
  const WeightRatioConstraints wr = Example1Wr();
  const ArspResult expected = ComputeArspEnum(
      dataset, PreferenceRegion::FromWeightRatios(wr));
  EXPECT_LT(MaxAbsDiff(expected, ComputeArspDual(dataset, wr)), 1e-10);
}

TEST(DualTest, NoDoubleCountingOnSharedBoundaries) {
  // Instances that share coordinate values with the query sit on the border
  // of two orthant boxes; the region-code filter must count them once.
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.5, 0.5}, 1.0);
  builder.AddSingleton(Point{0.5, 0.25}, 0.5);  // same x as the query point
  builder.AddSingleton(Point{0.25, 0.5}, 0.5);  // same y
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const WeightRatioConstraints wr = Example1Wr();
  const ArspResult expected = ComputeArspLoop(
      *dataset, PreferenceRegion::FromWeightRatios(wr));
  const ArspResult dual = ComputeArspDual(*dataset, wr);
  EXPECT_LT(MaxAbsDiff(expected, dual), 1e-10);
}

TEST(DualTest, DuplicatePointsMutuallyDominate) {
  UncertainDatasetBuilder builder(3);
  builder.AddSingleton(Point{0.5, 0.5, 0.5}, 0.6);
  builder.AddSingleton(Point{0.5, 0.5, 0.5}, 0.4);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const WeightRatioConstraints wr = RandomWr(3, 9);
  const ArspResult dual = ComputeArspDual(*dataset, wr);
  EXPECT_NEAR(dual.instance_probs[0], 0.6 * 0.6, 1e-12);
  EXPECT_NEAR(dual.instance_probs[1], 0.4 * 0.4, 1e-12);
}

TEST(DualTest, RandomAgreementSweep) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const int d = 2 + static_cast<int>(seed % 3);
    const UncertainDataset dataset =
        RandomDataset(30, 4, d, (seed % 2) * 0.4, seed);
    const WeightRatioConstraints wr = RandomWr(d, seed + 100);
    const ArspResult expected = ComputeArspLoop(
        dataset, PreferenceRegion::FromWeightRatios(wr));
    EXPECT_LT(MaxAbsDiff(expected, ComputeArspDual(dataset, wr)), 1e-8)
        << "seed=" << seed << " d=" << d;
  }
}

}  // namespace
}  // namespace arsp
