// Copyright 2026 The ARSP Authors.

#include "src/prefs/constraint_generators.h"

#include <gtest/gtest.h>

#include "src/prefs/preference_region.h"

namespace arsp {
namespace {

TEST(ConstraintGeneratorsTest, WeakRankingShape) {
  const LinearConstraints lc = MakeWeakRankingConstraints(4, 3);
  EXPECT_EQ(lc.dim(), 4);
  EXPECT_EQ(lc.num_constraints(), 3);
  // Decreasing weights satisfy; any inversion violates.
  EXPECT_TRUE(lc.Satisfies(Point{0.4, 0.3, 0.2, 0.1}));
  EXPECT_TRUE(lc.Satisfies(Point{0.25, 0.25, 0.25, 0.25}));
  EXPECT_FALSE(lc.Satisfies(Point{0.3, 0.4, 0.2, 0.1}));
}

TEST(ConstraintGeneratorsTest, WeakRankingPartial) {
  // c < d-1 leaves the tail unconstrained.
  const LinearConstraints lc = MakeWeakRankingConstraints(4, 1);
  EXPECT_TRUE(lc.Satisfies(Point{0.3, 0.2, 0.1, 0.4}));
  EXPECT_FALSE(lc.Satisfies(Point{0.2, 0.3, 0.1, 0.4}));
}

TEST(ConstraintGeneratorsTest, RandomSimplexWeightIsOnSimplex) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Point w = RandomSimplexWeight(5, rng);
    double sum = 0.0;
    for (int i = 0; i < 5; ++i) {
      EXPECT_GE(w[i], 0.0);
      sum += w[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ConstraintGeneratorsTest, InteractiveRegionsNonEmptyAndGrowVertices) {
  // The paper (Fig. 5t) relies on IM vertex counts typically growing with
  // c, unlike WR's constant d. Check non-emptiness always, and growth on
  // average across seeds.
  double vertices_c1 = 0.0;
  double vertices_c6 = 0.0;
  const int kSeeds = 20;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng1(seed), rng6(seed + 1000);
    const auto r1 = PreferenceRegion::FromLinearConstraints(
        MakeInteractiveConstraints(4, 1, rng1));
    const auto r6 = PreferenceRegion::FromLinearConstraints(
        MakeInteractiveConstraints(4, 6, rng6));
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r6.ok());
    vertices_c1 += r1->num_vertices();
    vertices_c6 += r6->num_vertices();
  }
  EXPECT_GT(vertices_c6 / kSeeds, vertices_c1 / kSeeds);
}

TEST(ConstraintGeneratorsTest, DeterministicUnderSeed) {
  Rng a(99), b(99);
  const LinearConstraints ca = MakeInteractiveConstraints(3, 4, a);
  const LinearConstraints cb = MakeInteractiveConstraints(3, 4, b);
  ASSERT_EQ(ca.num_constraints(), cb.num_constraints());
  for (int i = 0; i < ca.num_constraints(); ++i) {
    EXPECT_EQ(ca.rows()[static_cast<size_t>(i)].coef,
              cb.rows()[static_cast<size_t>(i)].coef);
  }
}

}  // namespace
}  // namespace arsp
