// Copyright 2026 The ARSP Authors.
//
// Direct coverage for common/lru.h (eviction order, ties, single entry) and
// for the engine-level capacity edge cases that previously exercised it only
// indirectly: a capacity-0 result cache (caching disabled entirely) and
// capacity-1 caches/pools (every insertion evicts).

#include "src/common/lru.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

struct Entry {
  int payload = 0;
  uint64_t last_used = 0;
};

TEST(LruTest, EvictsTheSmallestTick) {
  std::map<std::string, Entry> map;
  map["a"] = {1, 30};
  map["b"] = {2, 10};
  map["c"] = {3, 20};
  EvictLeastRecentlyUsed(map);
  EXPECT_EQ(map.count("b"), 0u);
  EXPECT_EQ(map.size(), 2u);
  EvictLeastRecentlyUsed(map);
  EXPECT_EQ(map.count("c"), 0u);
  EvictLeastRecentlyUsed(map);
  EXPECT_TRUE(map.empty());
}

TEST(LruTest, TouchingAnEntryProtectsIt) {
  std::map<int, Entry> map;
  uint64_t tick = 0;
  for (int k = 0; k < 4; ++k) map[k] = {k, ++tick};
  map[0].last_used = ++tick;  // re-use the oldest entry
  EvictLeastRecentlyUsed(map);
  EXPECT_EQ(map.count(0), 1u);  // protected by the touch
  EXPECT_EQ(map.count(1), 0u);  // now the least recently used
}

TEST(LruTest, SingleEntryMapEvictsToEmpty) {
  std::map<int, Entry> map;
  map[7] = {7, 42};
  EvictLeastRecentlyUsed(map);
  EXPECT_TRUE(map.empty());
}

TEST(LruTest, TickTiesEvictExactlyOneEntry) {
  // min_element picks one of the tied entries; the contract is "evict one",
  // not which one.
  std::map<int, Entry> map;
  map[1] = {1, 5};
  map[2] = {2, 5};
  EvictLeastRecentlyUsed(map);
  EXPECT_EQ(map.size(), 1u);
}

// ---------------------------------------------------------- engine edges

QueryRequest MakeRequest(DatasetHandle handle, int c) {
  QueryRequest request;
  request.dataset = handle;
  // Distinct rank constraints produce distinct cache keys / pool keys.
  request.constraints = ConstraintSpec::Region(testing_util::WrRegion(3, c));
  request.solver = "kdtt+";
  return request;
}

TEST(LruEngineTest, CacheCapacityZeroDisablesCaching) {
  EngineOptions options;
  options.result_cache_capacity = 0;
  ArspEngine engine(options);
  const DatasetHandle handle =
      engine.AddDataset(testing_util::RandomDataset(12, 3, 3, 0.5, 99));
  for (int round = 0; round < 2; ++round) {
    auto response = engine.Solve(MakeRequest(handle, 1));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->cache_hit);
  }
  const ArspEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(LruEngineTest, CacheCapacityOneKeepsOnlyTheLatestEntry) {
  EngineOptions options;
  options.result_cache_capacity = 1;
  ArspEngine engine(options);
  const DatasetHandle handle =
      engine.AddDataset(testing_util::RandomDataset(12, 3, 3, 0.5, 99));

  ASSERT_TRUE(engine.Solve(MakeRequest(handle, 1)).ok());
  // Same key again: served from the single slot.
  auto repeat = engine.Solve(MakeRequest(handle, 1));
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->cache_hit);

  // A different key evicts the first entry...
  ASSERT_TRUE(engine.Solve(MakeRequest(handle, 2)).ok());
  EXPECT_EQ(engine.cache_stats().entries, 1u);
  // ...so the original key misses again.
  auto evicted = engine.Solve(MakeRequest(handle, 1));
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted->cache_hit);
}

TEST(LruEngineTest, ContextPoolCapacityOneStillServesAllQueries) {
  EngineOptions options;
  options.context_pool_capacity = 1;
  ArspEngine engine(options);
  const DatasetHandle handle =
      engine.AddDataset(testing_util::RandomDataset(12, 3, 3, 0.5, 99));
  // Alternate constraint families so every solve wants a different pooled
  // context; the pool must evict down to one without breaking results.
  auto a1 = engine.Solve(MakeRequest(handle, 1));
  auto b1 = engine.Solve(MakeRequest(handle, 2));
  auto a2 = engine.Solve(MakeRequest(handle, 1));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_LE(engine.pooled_contexts(), 1u);
  // Identical request, identical answer, despite the context churn (the
  // cache serves a2; force a fresh solve too).
  QueryRequest fresh = MakeRequest(handle, 1);
  fresh.use_cache = false;
  auto a3 = engine.Solve(fresh);
  ASSERT_TRUE(a3.ok());
  EXPECT_EQ(a1->result->instance_probs, a3->result->instance_probs);
}

}  // namespace
}  // namespace arsp
