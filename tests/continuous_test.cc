// Copyright 2026 The ARSP Authors.

#include "src/uncertain/continuous.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::WrRegion;

TEST(ContinuousTest, DiscretizeShape) {
  ContinuousUncertainDataset dataset(2);
  dataset.AddUniformBox(Point{0.5, 0.5}, Point{0.1, 0.1}, 0.8);
  dataset.AddGaussian(Point{0.2, 0.8}, Point{0.05, 0.05});
  Rng rng(1);
  const UncertainDataset discrete = dataset.Discretize(16, rng);
  EXPECT_EQ(discrete.num_objects(), 2);
  EXPECT_EQ(discrete.num_instances(), 32);
  EXPECT_NEAR(discrete.object_prob(0), 0.8, 1e-9);
  EXPECT_NEAR(discrete.object_prob(1), 1.0, 1e-9);
}

TEST(ContinuousTest, BoxSamplesStayInBox) {
  ContinuousUncertainDataset dataset(3);
  dataset.AddUniformBox(Point{0.5, 0.5, 0.5}, Point{0.2, 0.1, 0.0});
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Point p = dataset.Sample(0, rng);
    EXPECT_GE(p[0], 0.3);
    EXPECT_LE(p[0], 0.7);
    EXPECT_GE(p[1], 0.4);
    EXPECT_LE(p[1], 0.6);
    EXPECT_EQ(p[2], 0.5);  // zero spread is deterministic
  }
}

TEST(ContinuousTest, SeparatedBoxesGiveExactAnswers) {
  // Object A's box lies strictly inside the dominance region of every point
  // of B's box: A always survives, B never does.
  ContinuousUncertainDataset dataset(2);
  dataset.AddUniformBox(Point{0.2, 0.2}, Point{0.05, 0.05});
  dataset.AddUniformBox(Point{0.8, 0.8}, Point{0.05, 0.05});
  const PreferenceRegion region = WrRegion(2, 1);
  double stderr_out = 1.0;
  const std::vector<double> probs = EstimateContinuousRskyline(
      dataset, region, /*samples_per_object=*/64, /*num_trials=*/4,
      /*seed=*/3, &stderr_out);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0], 1.0, 1e-9);
  EXPECT_NEAR(probs[1], 0.0, 1e-9);
  EXPECT_NEAR(stderr_out, 0.0, 1e-9);
}

TEST(ContinuousTest, SymmetricObjectsConvergeToHalf) {
  // Two i.i.d. objects on the same diagonal segment: by symmetry each ends
  // up un-dominated with probability ~1/2 + P(tie)=0. Monte-Carlo must land
  // near 0.5 with shrinking error.
  ContinuousUncertainDataset dataset(2);
  dataset.AddUniformBox(Point{0.5, 0.5}, Point{0.2, 0.2});
  dataset.AddUniformBox(Point{0.5, 0.5}, Point{0.2, 0.2});
  const PreferenceRegion region =
      PreferenceRegion::FromWeightRatios(testing_util::Example1Wr());
  double stderr_out = 0.0;
  const std::vector<double> probs = EstimateContinuousRskyline(
      dataset, region, /*samples_per_object=*/128, /*num_trials=*/6,
      /*seed=*/7, &stderr_out);
  // Pr(un-dominated) is symmetric across the two objects.
  EXPECT_NEAR(probs[0], probs[1], 0.1);
  // Under F = ratios [0.5, 2], B survives iff A's draw does not F-dominate
  // it; by symmetry that probability equals 1 - P(A ≺F B) with
  // P(A ≺F B) = P(B ≺F A), so both lie in (0, 1) strictly.
  EXPECT_GT(probs[0], 0.2);
  EXPECT_LT(probs[0], 0.8);
  EXPECT_LT(stderr_out, 0.1);
}

TEST(ContinuousTest, EstimateIsDeterministicUnderSeed) {
  ContinuousUncertainDataset dataset(2);
  dataset.AddUniformBox(Point{0.4, 0.6}, Point{0.1, 0.1});
  dataset.AddGaussian(Point{0.6, 0.4}, Point{0.1, 0.1});
  const PreferenceRegion region = WrRegion(2, 1);
  const auto a = EstimateContinuousRskyline(dataset, region, 32, 3, 11);
  const auto b = EstimateContinuousRskyline(dataset, region, 32, 3, 11);
  EXPECT_EQ(a, b);
}

TEST(ContinuousTest, MoreSamplesReduceDiscretizationGap) {
  // A box straddling another box's dominance boundary: the coarse estimate
  // moves toward the fine estimate as samples grow.
  ContinuousUncertainDataset dataset(2);
  dataset.AddUniformBox(Point{0.35, 0.35}, Point{0.15, 0.15});
  dataset.AddUniformBox(Point{0.5, 0.5}, Point{0.15, 0.15});
  const PreferenceRegion region = WrRegion(2, 1);
  const auto fine =
      EstimateContinuousRskyline(dataset, region, 1024, 4, 23);
  const auto coarse = EstimateContinuousRskyline(dataset, region, 16, 4, 23);
  const auto medium =
      EstimateContinuousRskyline(dataset, region, 256, 4, 23);
  // The medium estimate should not be farther from fine than the coarse
  // one by more than noise.
  const double coarse_gap = std::abs(coarse[1] - fine[1]);
  const double medium_gap = std::abs(medium[1] - fine[1]);
  EXPECT_LT(medium_gap, coarse_gap + 0.05);
}

}  // namespace
}  // namespace arsp
