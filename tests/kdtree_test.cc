// Copyright 2026 The ARSP Authors.

#include "src/index/kdtree.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace arsp {
namespace {

std::vector<KdItem> RandomItems(int n, int dim, Rng& rng) {
  std::vector<KdItem> items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
    items.push_back(KdItem{std::move(p), i, rng.Uniform(0.0, 1.0)});
  }
  return items;
}

TEST(KdTreeTest, EmptyTree) {
  const KdTree tree(std::vector<KdItem>{});
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.SumInBox(Mbr(Point{0.0}, Point{1.0})), 0.0);
}

TEST(KdTreeTest, RootMbrIsTight) {
  Rng rng(1);
  const auto items = RandomItems(100, 3, rng);
  Mbr expected = Mbr::Empty(3);
  for (const KdItem& it : items) expected.Extend(it.point);
  const KdTree tree(items);
  EXPECT_EQ(tree.root_mbr().min_corner(), expected.min_corner());
  EXPECT_EQ(tree.root_mbr().max_corner(), expected.max_corner());
}

TEST(KdTreeTest, SumInBoxMatchesBruteForce) {
  Rng rng(2);
  const auto items = RandomItems(500, 3, rng);
  const KdTree tree(items);
  for (int trial = 0; trial < 50; ++trial) {
    Point lo(3), hi(3);
    for (int k = 0; k < 3; ++k) {
      const double a = rng.Uniform01();
      const double b = rng.Uniform01();
      lo[k] = std::min(a, b);
      hi[k] = std::max(a, b);
    }
    const Mbr box(lo, hi);
    double expected = 0.0;
    for (const KdItem& it : items) {
      if (box.Contains(it.point)) expected += it.weight;
    }
    EXPECT_NEAR(tree.SumInBox(box), expected, 1e-9);
  }
}

TEST(KdTreeTest, ForEachInBoxVisitsExactlyTheBox) {
  Rng rng(3);
  const auto items = RandomItems(300, 2, rng);
  const KdTree tree(items);
  const Mbr box(Point{0.25, 0.25}, Point{0.75, 0.75});
  std::vector<int> visited;
  tree.ForEachInBox(
      box, [&](const KdTree::EntryRef& it) { visited.push_back(it.id); });
  std::vector<int> expected;
  for (const KdItem& it : items) {
    if (box.Contains(it.point)) expected.push_back(it.id);
  }
  std::sort(visited.begin(), visited.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(visited, expected);
}

TEST(KdTreeTest, HalfspaceReportingMatchesBruteForce) {
  Rng rng(4);
  const auto items = RandomItems(400, 3, rng);
  const KdTree tree(items);
  for (int trial = 0; trial < 30; ++trial) {
    const Hyperplane hp({rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)},
                        rng.Uniform(-1.0, 1.0));
    const Mbr box = tree.root_mbr();
    std::vector<int> visited;
    tree.ForEachInBoxBelow(
        box, hp, 0.0,
        [&](const KdTree::EntryRef& it) { visited.push_back(it.id); });
    std::vector<int> expected;
    for (const KdItem& it : items) {
      if (hp.SignedDistance(it.point) <= 0.0) expected.push_back(it.id);
    }
    std::sort(visited.begin(), visited.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(visited, expected);
  }
}

TEST(KdTreeTest, ExistsInBoxBelowRespectsExclusion) {
  // Single point below the plane: found unless excluded.
  std::vector<KdItem> items = {{Point{0.5, 0.1}, 7, 1.0},
                               {Point{0.5, 0.9}, 8, 1.0}};
  const KdTree tree(items);
  const Hyperplane hp({0.0}, -0.5);  // y = 0.5
  const Mbr box = tree.root_mbr();
  EXPECT_TRUE(tree.ExistsInBoxBelow(box, hp, 0.0, /*exclude_id=*/-1));
  EXPECT_FALSE(tree.ExistsInBoxBelow(box, hp, 0.0, /*exclude_id=*/7));
}

TEST(KdTreeTest, DuplicatePointsAreAllIndexed) {
  std::vector<KdItem> items;
  for (int i = 0; i < 50; ++i) items.push_back({Point{0.5, 0.5}, i, 0.1});
  const KdTree tree(items);
  EXPECT_NEAR(tree.SumInBox(Mbr(Point{0.5, 0.5}, Point{0.5, 0.5})), 5.0,
              1e-9);
}

TEST(KdTreeTest, OrthantQueryWithHalfspace) {
  // Points in the lower-left orthant of (0.5, 0.5) below y = 1 - x.
  Rng rng(5);
  const auto items = RandomItems(300, 2, rng);
  const KdTree tree(items);
  const Mbr orthant(tree.root_mbr().min_corner(), Point{0.5, 0.5});
  const Hyperplane hp({-1.0}, -1.0);  // y = -x + 1
  int count = 0;
  tree.ForEachInBoxBelow(orthant, hp, 0.0,
                         [&](const KdTree::EntryRef&) { ++count; });
  int expected = 0;
  for (const KdItem& it : items) {
    if (it.point[0] <= 0.5 && it.point[1] <= 0.5 &&
        it.point[1] <= 1.0 - it.point[0]) {
      ++expected;
    }
  }
  EXPECT_EQ(count, expected);
}

}  // namespace
}  // namespace arsp
