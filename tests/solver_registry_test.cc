// Copyright 2026 The ARSP Authors.
//
// Unit tests for the solver abstraction itself: registry lookup, capability
// flag rejection (a solver handed a context it cannot serve must return a
// clean Status, never compute garbage), the typed option bag, preprocessing
// reuse through ExecutionContext, instrumentation, and the compatibility of
// the legacy free functions with their registry counterparts.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/bnb_algorithm.h"
#include "src/core/solver.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::RandomWr;
using testing_util::WrRegion;

TEST(SolverRegistry, NamesCoverAllEightFamilies) {
  const std::vector<std::string> names = SolverRegistry::Names();
  for (const char* expected :
       {"enum", "loop", "bnb", "kdtt", "kdtt+", "qdtt+", "mwtt", "dual",
        "dual-2d-ms"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistry, UnknownNameIsNotFoundAndListsAlternatives) {
  auto solver = SolverRegistry::Create("kdtt++");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
  EXPECT_NE(solver.status().message().find("kdtt+"), std::string::npos);
}

TEST(SolverRegistry, LookupIsCaseInsensitive) {
  auto solver = SolverRegistry::Create("KDTT+");
  ASSERT_TRUE(solver.ok());
  EXPECT_STREQ((*solver)->name(), "kdtt+");
}

TEST(SolverRegistry, DisplayNamesMatchThePaper) {
  const std::pair<const char*, const char*> expected[] = {
      {"loop", "LOOP"},   {"kdtt", "KDTT"}, {"kdtt+", "KDTT+"},
      {"qdtt+", "QDTT+"}, {"bnb", "B&B"},   {"dual", "DUAL"},
      {"mwtt", "MWTT"},   {"enum", "ENUM"}, {"dual-2d-ms", "DUAL-2D-MS"}};
  for (const auto& [name, display] : expected) {
    auto solver = SolverRegistry::Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_STREQ((*solver)->display_name(), display);
  }
}

// ---------------------------------------------------------------- capability
// flag rejection

TEST(Capabilities, DualOnGeneralRegionFailsCleanly) {
  const UncertainDataset dataset = RandomDataset(10, 2, 3, 0.0, 1);
  ExecutionContext context(dataset, WrRegion(3, 2));
  auto dual = SolverRegistry::Create("dual");
  ASSERT_TRUE(dual.ok());
  auto result = (*dual)->Solve(context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("weight-ratio"),
            std::string::npos);
}

TEST(Capabilities, Dual2dMsRejectsHigherDimensions) {
  const UncertainDataset dataset = RandomDataset(10, 1, 3, 0.0, 2);
  ExecutionContext context(dataset, RandomWr(3, 2));
  auto solver = SolverRegistry::Create("dual-2d-ms");
  ASSERT_TRUE(solver.ok());
  auto result = (*solver)->Solve(context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Capabilities, Dual2dMsRejectsMultiInstanceObjects) {
  const UncertainDataset dataset = RandomDataset(10, 3, 2, 0.0, 3);
  ExecutionContext context(dataset, RandomWr(2, 3));
  auto solver = SolverRegistry::Create("dual-2d-ms");
  ASSERT_TRUE(solver.ok());
  auto result = (*solver)->Solve(context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Capabilities, GeneralSolversAcceptWeightRatioContexts) {
  // A weight-ratio context serves general-F solvers through the lazily
  // derived preference region.
  const UncertainDataset dataset = RandomDataset(10, 2, 2, 0.0, 4);
  ExecutionContext context(dataset, RandomWr(2, 4));
  for (const char* name : {"kdtt+", "loop", "bnb"}) {
    auto solver = SolverRegistry::Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_TRUE((*solver)->Solve(context).ok()) << name;
  }
}

// ------------------------------------------------------------------- options

TEST(Options, UnknownKeyIsRejected) {
  auto solver = SolverRegistry::Create(
      "kdtt+", SolverOptions().SetInt("fanout", 8));
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(solver.status().message().find("fanout"), std::string::npos);
}

TEST(Options, TypeMismatchIsRejected) {
  auto solver = SolverRegistry::Create(
      "mwtt", SolverOptions().SetString("fanout", "eight"));
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kInvalidArgument);
}

TEST(Options, OutOfRangeValueIsRejected) {
  auto solver =
      SolverRegistry::Create("mwtt", SolverOptions().SetInt("fanout", 1));
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kInvalidArgument);
}

TEST(Options, ConfiguredOptionsChangeBehaviour) {
  const UncertainDataset dataset = RandomDataset(30, 3, 3, 0.0, 5);
  const PreferenceRegion region = WrRegion(3, 2);
  ExecutionContext context(dataset, region);

  auto narrow = SolverRegistry::Create(
      "mwtt", SolverOptions().SetInt("fanout", 2));
  auto wide = SolverRegistry::Create(
      "mwtt", SolverOptions().SetInt("fanout", 32));
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  auto narrow_result = (*narrow)->Solve(context);
  const int64_t narrow_nodes = context.last_stats().nodes_visited;
  auto wide_result = (*wide)->Solve(context);
  const int64_t wide_nodes = context.last_stats().nodes_visited;
  ASSERT_TRUE(narrow_result.ok());
  ASSERT_TRUE(wide_result.ok());
  EXPECT_LT(MaxAbsDiff(*narrow_result, *wide_result), 1e-10);
  EXPECT_NE(narrow_nodes, wide_nodes);  // fan-out changes the tree shape
}

TEST(Options, ParseKeyValueInfersTypes) {
  SolverOptions options;
  ASSERT_TRUE(options.ParseKeyValue("fanout=8").ok());
  ASSERT_TRUE(options.ParseKeyValue("pruning=false").ok());
  ASSERT_TRUE(options.ParseKeyValue("ratio=1.5").ok());
  ASSERT_TRUE(options.ParseKeyValue("mode=fused").ok());
  EXPECT_FALSE(options.ParseKeyValue("no-equals-sign").ok());
  // Overflowing numbers are rejected, not silently clamped.
  EXPECT_FALSE(options.ParseKeyValue("n=99999999999999999999").ok());
  EXPECT_FALSE(options.ParseKeyValue("x=1e999").ok());
  EXPECT_EQ(options.IntOr("fanout", 0).value(), 8);
  EXPECT_FALSE(options.BoolOr("pruning", true).value());
  EXPECT_DOUBLE_EQ(options.DoubleOr("ratio", 0.0).value(), 1.5);
  EXPECT_EQ(options.StringOr("mode", "").value(), "fused");
  // Ints widen to double, but not the reverse.
  EXPECT_DOUBLE_EQ(options.DoubleOr("fanout", 0.0).value(), 8.0);
  EXPECT_FALSE(options.IntOr("ratio", 0).ok());
}

TEST(Options, CacheKeyIsInjective) {
  // Delimiter characters inside string values must not let two distinct
  // bags render the same cache key (they are length-prefixed).
  SolverOptions smuggled;
  smuggled.SetString("a", "x;b=bool:true");
  SolverOptions split;
  split.SetString("a", "x");
  split.SetBool("b", true);
  EXPECT_NE(smuggled.CacheKey(), split.CacheKey());
  SolverOptions same;
  same.SetString("a", "x;b=bool:true");
  EXPECT_EQ(smuggled.CacheKey(), same.CacheKey());
  EXPECT_TRUE(SolverOptions().CacheKey().empty());
}

// ------------------------------------------------- context reuse and stats

TEST(ExecutionContextTest, PreprocessingIsComputedOnceAndShared) {
  const UncertainDataset dataset = RandomDataset(20, 3, 3, 0.0, 6);
  ExecutionContext context(dataset, WrRegion(3, 2));
  const ScoreSpan scores = context.scores();
  EXPECT_EQ(scores.coords, context.scores().coords);  // same storage
  EXPECT_EQ(scores.n, dataset.num_instances());
  EXPECT_EQ(&context.instance_kdtree(), &context.instance_kdtree());

  // A second solver on the same context pays zero setup: everything lazy
  // was already computed by the first.
  auto first = SolverRegistry::Create("kdtt+");
  auto second = SolverRegistry::Create("qdtt+");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE((*first)->Solve(context).ok());
  ASSERT_TRUE((*second)->Solve(context).ok());
  EXPECT_EQ(context.last_stats().solver, "qdtt+");
  EXPECT_EQ(context.last_stats().setup_millis, 0.0);
}

TEST(ExecutionContextTest, StatsMirrorResultCounters) {
  const UncertainDataset dataset = RandomDataset(20, 3, 3, 0.0, 7);
  ExecutionContext context(dataset, WrRegion(3, 2));
  auto solver = SolverRegistry::Create("kdtt+");
  ASSERT_TRUE(solver.ok());
  auto result = (*solver)->Solve(context);
  ASSERT_TRUE(result.ok());
  const SolverStats& stats = context.last_stats();
  EXPECT_EQ(stats.solver, "kdtt+");
  EXPECT_EQ(stats.dominance_tests, result->dominance_tests);
  EXPECT_EQ(stats.nodes_visited, result->nodes_visited);
  EXPECT_GT(stats.nodes_visited, 0);
  EXPECT_GE(stats.solve_millis, stats.setup_millis);
  EXPECT_NE(stats.ToString().find("solver=kdtt+"), std::string::npos);
}

TEST(ExecutionContextTest, RtreeIsCachedPerFanout) {
  // Regression: a single cached slot used to rebuild the R-tree on every
  // fan-out alternation; now each fan-out keeps its own tree (up to the
  // kMaxCachedRtrees bound, evicting safely via shared ownership).
  const UncertainDataset dataset = RandomDataset(20, 3, 2, 0.0, 60);
  ExecutionContext context(dataset, WrRegion(2, 1));
  const auto narrow = context.instance_rtree(4);
  const auto wide = context.instance_rtree(32);
  EXPECT_NE(narrow.get(), wide.get());
  // Alternating fan-outs returns the identical trees — no rebuilds.
  EXPECT_EQ(context.instance_rtree(4).get(), narrow.get());
  EXPECT_EQ(context.instance_rtree(32).get(), wide.get());
  EXPECT_EQ(context.instance_rtree(4).get(), narrow.get());
  EXPECT_EQ(narrow->size(), dataset.num_instances());
  EXPECT_EQ(wide->size(), dataset.num_instances());
  // Flooding with distinct fan-outs stays bounded, and a previously handed
  // out tree survives eviction through its shared_ptr.
  const int flood =  // RTree requires fan-out >= 4
      4 + 2 * static_cast<int>(ExecutionContext::kMaxCachedRtrees);
  for (int fanout = 4; fanout < flood; ++fanout) {
    EXPECT_EQ(context.instance_rtree(fanout)->size(),
              dataset.num_instances());
  }
  EXPECT_EQ(narrow->size(), dataset.num_instances());  // still alive
}

TEST(ExecutionContextTest, StatsAreFreshPerRunOnReusedContext) {
  // A pooled context serves many queries; each run's stats must start from
  // zero instead of accumulating counters across runs.
  const UncertainDataset dataset = RandomDataset(25, 3, 3, 0.2, 61);
  ExecutionContext context(dataset, WrRegion(3, 2));
  auto solver = SolverRegistry::Create("kdtt+");
  ASSERT_TRUE(solver.ok());
  SolverStats first;
  SolverStats second;
  ASSERT_TRUE((*solver)->Solve(context, &first).ok());
  ASSERT_TRUE((*solver)->Solve(context, &second).ok());
  EXPECT_GT(first.nodes_visited, 0);
  EXPECT_EQ(first.nodes_visited, second.nodes_visited);  // not doubled
  EXPECT_EQ(first.dominance_tests, second.dominance_tests);
  EXPECT_GT(first.setup_millis, 0.0);   // this run built the mapping
  EXPECT_EQ(second.setup_millis, 0.0);  // everything already cached
  EXPECT_EQ(context.last_stats().nodes_visited, second.nodes_visited);
}

TEST(ExecutionContextTest, WeightRatioAccessorRequiresWrContext) {
  const UncertainDataset dataset = RandomDataset(5, 1, 2, 0.0, 8);
  ExecutionContext wr_context(dataset, RandomWr(2, 8));
  EXPECT_TRUE(wr_context.has_weight_ratios());
  EXPECT_EQ(wr_context.weight_ratios().dim(), 2);
  EXPECT_EQ(wr_context.region().dim(), 2);  // derived lazily

  ExecutionContext region_context(dataset, WrRegion(2, 1));
  EXPECT_FALSE(region_context.has_weight_ratios());
}

// ----------------------------------------------------------- compat shims

TEST(CompatShims, FreeFunctionsMatchRegistrySolvers) {
  const UncertainDataset dataset = RandomDataset(25, 3, 3, 0.3, 9);
  const PreferenceRegion region = WrRegion(3, 2);
  ExecutionContext context(dataset, region);
  auto solver = SolverRegistry::Create("bnb");
  ASSERT_TRUE(solver.ok());
  auto via_registry = (*solver)->Solve(context);
  ASSERT_TRUE(via_registry.ok());
  EXPECT_LT(MaxAbsDiff(ComputeArspBnb(dataset, region), *via_registry),
            1e-12);
}

}  // namespace
}  // namespace arsp
