// Copyright 2026 The ARSP Authors.
//
// Focused tests for Algorithm 2: the Theorem-3/4 pruning set, equal-key tie
// batching, lazy aggregated R-trees, and the pruning ablation.

#include <gtest/gtest.h>

#include "src/core/bnb_algorithm.h"
#include "src/core/enum_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "tests/test_util.h"

namespace arsp {
namespace {

using testing_util::RandomDataset;
using testing_util::WrRegion;

TEST(BnbTest, PruningDoesNotChangeResults) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const UncertainDataset dataset = RandomDataset(40, 4, 3, 0.2, seed);
    const PreferenceRegion region = WrRegion(3, 2);
    const ArspResult with = ComputeArspBnb(dataset, region,
                                           {.enable_pruning = true});
    const ArspResult without = ComputeArspBnb(dataset, region,
                                              {.enable_pruning = false});
    EXPECT_LT(MaxAbsDiff(with, without), 1e-10) << "seed=" << seed;
  }
}

TEST(BnbTest, PruningFiresOnDominatedData) {
  // One certain dominator at the origin: almost everything else is zero and
  // must be pruned rather than evaluated.
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.0, 0.0}, 1.0);
  Rng rng(3);
  for (int j = 0; j < 200; ++j) {
    builder.AddSingleton(Point{rng.Uniform(0.2, 1.0), rng.Uniform(0.2, 1.0)},
                         1.0);
  }
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult pruned = ComputeArspBnb(*dataset, region);
  EXPECT_GT(pruned.nodes_pruned, 0);
  EXPECT_NEAR(pruned.instance_probs[0], 1.0, 1e-12);
  EXPECT_EQ(CountNonZero(pruned), 1);
}

TEST(BnbTest, TieBatchingHandlesDuplicatePoints) {
  // Duplicate certain points across objects score identically under every
  // vertex; Eq. (3) requires both to see the other's full mass.
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.4, 0.6}, 1.0);
  builder.AddSingleton(Point{0.4, 0.6}, 1.0);
  builder.AddSingleton(Point{0.9, 0.9}, 0.8);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult expected = ComputeArspEnum(*dataset, region);
  const ArspResult bnb = ComputeArspBnb(*dataset, region);
  EXPECT_NEAR(bnb.instance_probs[0], 0.0, 1e-12);
  EXPECT_NEAR(bnb.instance_probs[1], 0.0, 1e-12);
  EXPECT_LT(MaxAbsDiff(expected, bnb), 1e-12);
}

TEST(BnbTest, TieBatchingWithPartialMass) {
  // Duplicates with Σp < 1: survival probability is the probability the
  // other object does not materialize there.
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(Point{0.5, 0.5}, 0.6);
  builder.AddSingleton(Point{0.5, 0.5}, 0.3);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult bnb = ComputeArspBnb(*dataset, region);
  EXPECT_NEAR(bnb.instance_probs[0], 0.6 * 0.7, 1e-12);
  EXPECT_NEAR(bnb.instance_probs[1], 0.3 * 0.4, 1e-12);
}

TEST(BnbTest, DominanceInsideAnEqualKeyBatch) {
  // Two points tie exactly under the heap vertex, yet one F-dominates the
  // other (it also wins under the second vertex). A traversal that processes
  // tied keys one-by-one against the R-trees misses this dominator; the
  // batch phase must catch it.
  // Dyadic coordinates keep every score exact in binary floating point.
  const PreferenceRegion region =
      PreferenceRegion::FromVertices({Point{0.5, 0.5}, Point{0.25, 0.75}})
          .value();
  const Point a{0.5, 0.5};    // scores (0.5, 0.5)
  const Point b{0.25, 0.75};  // scores (0.5, 0.625): tied on the heap vertex
  ASSERT_EQ(Score(region.vertices()[0], a), Score(region.vertices()[0], b));
  ASSERT_TRUE(FDominates(a, b, region));
  ASSERT_FALSE(FDominates(b, a, region));
  UncertainDatasetBuilder builder(2);
  builder.AddSingleton(a, 1.0);
  builder.AddSingleton(b, 1.0);
  const auto dataset = builder.Build();
  ASSERT_TRUE(dataset.ok());
  const ArspResult bnb = ComputeArspBnb(*dataset, region);
  EXPECT_NEAR(bnb.instance_probs[0], 1.0, 1e-12);
  EXPECT_NEAR(bnb.instance_probs[1], 0.0, 1e-12);
}

TEST(BnbTest, AgreesWithLoopOnLargerData) {
  const UncertainDataset dataset = RandomDataset(100, 5, 4, 0.3, 17);
  const PreferenceRegion region = WrRegion(4, 3);
  EXPECT_LT(MaxAbsDiff(ComputeArspLoop(dataset, region),
                       ComputeArspBnb(dataset, region)),
            1e-8);
}

TEST(BnbTest, RespectsCustomFanout) {
  const UncertainDataset dataset = RandomDataset(50, 3, 2, 0.0, 23);
  const PreferenceRegion region = WrRegion(2, 1);
  const ArspResult narrow =
      ComputeArspBnb(dataset, region, {.rtree_fanout = 4});
  const ArspResult wide =
      ComputeArspBnb(dataset, region, {.rtree_fanout = 64});
  EXPECT_LT(MaxAbsDiff(narrow, wide), 1e-10);
}

}  // namespace
}  // namespace arsp
